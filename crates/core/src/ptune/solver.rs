//! Chain-aware HE-PTune v2: the [`ChainPlan`] solver.
//!
//! The per-layer tuner ([`crate::ptune::tuner`]) sweeps abstract
//! single-word `(n, q, A, W)` tuples — fine for the paper's Fig. 3
//! scatter, but the engine runs *RNS chains*: presets with congruent
//! limbs, a level per layer, a special prime for hybrid key switching,
//! and a rotation plan ([`BsgsPlan`] / [`ReducePlan`]) per layer whose
//! price depends on all of the above. This module closes that gap: it
//! sweeps **{chain, per-layer level, rotation plan}** jointly over a
//! network's linear layers, using the hybrid-aware cost model
//! ([`HeCostParams`]) and a chain-exact noise model
//! ([`layer_noise_on_chain`]), and emits a [`ChainPlan`] — concrete
//! [`BfvParams`] (exact moduli, `t`, special prime) plus a level and plan
//! label per layer — that `cheetah-protocol`'s `PreparedLayers` and
//! `cheetah-serve` consume directly. "Fast" becomes a solver output
//! instead of a hand pick.

use cheetah_bfv::BfvParams;
use cheetah_nn::LinearLayer;

use crate::cost::HeCostParams;
use crate::linear::{BsgsPlan, ReducePlan};
use crate::ptune::noise::{layer_noise_shape, LayerNoise, NoiseRegime};
use crate::ptune::perf::layer_ops_scheduled;
use crate::ptune::tuner::InfeasibleLayer;
use crate::quant::QuantSpec;
use crate::schedule::Schedule;
use crate::sparse::{LayerStructure, SparseBsgsPlan};

pub use cheetah_bfv::noise::FAILURE_SCALE;

/// Budget (bits) a level must clear to be planned — the same margin the
/// protocol layer's runtime planner keeps in hand.
const PLAN_MARGIN_BITS: f64 = 2.0;

/// Noise of one layer evaluated **on a concrete chain at a level**, from
/// the exact limb values rather than an abstract `q_bits`: the ceiling is
/// `Q_ℓ/2t` of the live limbs, the rotate additive is the hybrid
/// `live·(q_max/P)·n·B/2` term when the chain carries a special prime and
/// the digit `l_ct·A·B·n/2` term otherwise, and the input is a fresh
/// encryption mod-switched down `level` limbs (the Gazelle session
/// re-encrypts between layers, so every layer starts fresh).
pub fn layer_noise_on_chain(
    layer: &LinearLayer,
    params: &BfvParams,
    level: usize,
    schedule: Schedule,
    regime: NoiseRegime,
) -> LayerNoise {
    layer_noise_on_chain_structured(layer, None, params, level, schedule, regime)
}

/// [`layer_noise_on_chain`] under a measured weight structure: the
/// accumulated mult/rotate term counts scale with the live-mask fraction
/// (skipped diagonals contribute no rotate-mul term at all), so sparse
/// layers clear the margin at levels their dense pricing could not afford.
/// `None` prices the dense (fully live) worst case.
pub fn layer_noise_on_chain_structured(
    layer: &LinearLayer,
    structure: Option<&LayerStructure>,
    params: &BfvParams,
    level: usize,
    schedule: Schedule,
    regime: NoiseRegime,
) -> LayerNoise {
    let live_frac = structure.map_or(1.0, LayerStructure::live_fraction);
    let n = params.degree() as f64;
    let sigma = params.sigma();
    let b = 6.0 * sigma;
    let t = params.plain_modulus().value() as f64;
    let l_pt = params.l_pt() as f64;
    let w = if params.l_pt() == 1 {
        t
    } else {
        params.w_dcmp() as f64
    };
    let live = params.live_limbs_at(level);
    // Product of the dropped tail limbs: each switch divides the
    // invariant noise by its dropped limb at the price of a small
    // additive rounding term.
    let dropped: f64 = (live..params.limbs())
        .map(|i| params.chain().modulus(i).value() as f64)
        .product();
    let mut shape = layer_noise_shape(layer, params.degree());
    // A dead mask contributes no rotate-mul term: scale both term counts
    // by the live fraction (floored at one term so an almost-empty layer
    // still pays its single live accumulation).
    if live_frac < 1.0 {
        shape.mult_terms = (shape.mult_terms * live_frac).max(1.0);
        shape.rot_terms = (shape.rot_terms * live_frac).max(1.0);
    }
    let ceiling_bits = params.noise_ceiling_at(level).log2();

    let noise_log2 = match regime {
        NoiseRegime::WorstCase => {
            let v0 = 2.0 * n * b * b / dropped + level as f64 * (1.0 + (n + 1.0) / 2.0);
            let eta_m = n * l_pt * w / 2.0;
            let eta_a = match params.special() {
                Some(p) => {
                    let q_max = (0..live)
                        .map(|i| params.chain().modulus(i).value())
                        .max()
                        .unwrap_or(1) as f64;
                    live as f64 * (q_max / p.value() as f64) * n * b / 2.0 + 1.0 + (n + 1.0) / 2.0
                }
                None => params.l_ct_at(level) as f64 * params.a_dcmp() as f64 * b * n / 2.0,
            };
            let input = match schedule {
                Schedule::PartialAligned => v0,
                Schedule::InputAligned => v0 + eta_a,
            };
            (shape.mult_terms * eta_m * input + shape.rot_terms * eta_a).log2()
        }
        NoiseRegime::Statistical => {
            let round_var = (1.0 + 2.0 * n / 3.0) / 12.0;
            let v0 = sigma * sigma * (1.0 + 4.0 * n / 3.0) / (dropped * dropped)
                + level as f64 * round_var;
            let eta_m = if params.l_pt() == 1 {
                n * t * t / 12.0
            } else {
                n * l_pt * w * w / 3.0
            };
            let eta_a = match params.special() {
                Some(p) => {
                    let q_max = (0..live)
                        .map(|i| params.chain().modulus(i).value())
                        .max()
                        .unwrap_or(1) as f64;
                    let pv = p.value() as f64;
                    live as f64 * n * (q_max * q_max / 12.0) * sigma * sigma / (pv * pv) + round_var
                }
                None => {
                    let a = params.a_dcmp() as f64;
                    params.l_ct_at(level) as f64 * n * (a * a / 12.0) * sigma * sigma
                }
            };
            let input = match schedule {
                Schedule::PartialAligned => v0,
                Schedule::InputAligned => v0 + eta_a,
            };
            let variance = shape.mult_terms * eta_m * input + shape.rot_terms * eta_a;
            variance.log2() / 2.0 + FAILURE_SCALE.log2()
        }
    };
    LayerNoise {
        noise_log2,
        budget_bits: ceiling_bits - noise_log2,
    }
}

/// One layer's slot in a [`ChainPlan`]: the level it runs at, the rotation
/// plan the cost model picked at that level, and the modeled cost/budget.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// Layer name.
    pub layer: String,
    /// Chain level (dropped limbs) the layer runs at.
    pub level: usize,
    /// Rotation-plan label (`fc bsgs b=.. g=..`, `fc diag`,
    /// `conv reduce ..`) — the same family the engine's preparers choose
    /// from, priced under the same [`HeCostParams`].
    pub plan: String,
    /// Modeled integer multiplications for the layer at this level.
    pub int_mults: f64,
    /// Remaining modeled noise budget (bits) at this level.
    pub budget_bits: f64,
}

/// The solver's output: one concrete chain for the whole network plus a
/// level and rotation plan per linear layer. Everything a session needs —
/// exact moduli, `t`, the special prime, decomposition bases — is inside
/// `params`; `levels()` is what `PreparedLayers` consumes.
#[derive(Debug, Clone)]
pub struct ChainPlan {
    /// Candidate name (`4096/hybrid_2x36`, …) for reports.
    pub name: String,
    /// The chosen parameter set, special prime included when hybrid won.
    pub params: BfvParams,
    /// The dot-product schedule the plan was priced under.
    pub schedule: Schedule,
    /// Per-linear-layer plans, in network order.
    pub layers: Vec<LayerPlan>,
    /// Total modeled integer multiplications across the network.
    pub total_int_mults: f64,
}

impl ChainPlan {
    /// Per-layer levels in network order — the `PreparedLayers` input.
    pub fn levels(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.level).collect()
    }
}

/// The chain candidates the solver sweeps at the given degrees: every
/// digit preset and every hybrid preset that exists (is secure and fits
/// the CRT range) at each degree.
pub fn chain_candidates(degrees: &[usize]) -> Vec<(String, BfvParams)> {
    let mut out = Vec::new();
    for &n in degrees {
        for presets in [BfvParams::presets(n), BfvParams::hybrid_presets(n)]
            .into_iter()
            .flatten()
        {
            for (name, p) in presets {
                out.push((format!("{n}/{name}"), p));
            }
        }
    }
    out
}

/// Prices one layer on a chain at a level, choosing the rotation plan
/// jointly: FC layers get the cheaper of the BSGS split and the diagonal
/// path under the chain's (hybrid-aware) hoist/replay pricing — the same
/// chooser `HomFc::new` runs at prepare time — and conv layers record the
/// channel-reduction plan `HomConv2d` picks. Returns `(int_mults, label)`.
///
/// Under a measured weight structure (`structure = Some`): sparse FC
/// layers are priced with the [`SparseBsgsPlan`] chooser — exactly the
/// live rotations the prepared kernel will perform — and every layer's
/// `HE_Mult` bill scales with its live-mask fraction. An all-zero layer
/// costs nothing. `None` prices dense.
fn layer_cost_on_chain_structured(
    layer: &LinearLayer,
    structure: Option<&LayerStructure>,
    params: &BfvParams,
    level: usize,
    schedule: Schedule,
) -> (f64, String) {
    let cost = HeCostParams::for_bfv(params, level);
    let ops = layer_ops_scheduled(layer, params.degree(), params.l_pt(), schedule);
    let live_frac = structure.map_or(1.0, LayerStructure::live_fraction);
    if live_frac == 0.0 {
        return (0.0, "zero".to_string());
    }
    let mult_cost = ops.he_mult * live_frac * cost.he_mult_mults() as f64;
    match layer {
        LinearLayer::Fc(f) => {
            if let Some(LayerStructure::Fc(s)) = structure {
                if !s.fully_live() {
                    let plan = SparseBsgsPlan::choose(s, &cost);
                    return (
                        mult_cost + plan.rotation_mults(&cost) as f64,
                        format!(
                            "fc sparse b={} g={} live={}/{}",
                            plan.b,
                            plan.g,
                            s.live_diagonals(),
                            s.ni()
                        ),
                    );
                }
            }
            let d = f.ni.min(params.degree());
            let diag = (d as u64).saturating_sub(1) * cost.he_rotate_mults();
            match BsgsPlan::choose(d, &cost) {
                Some(plan) => (
                    mult_cost + cost.bsgs_rotation_mults(plan.b, plan.g) as f64,
                    format!("fc bsgs b={} g={}", plan.b, plan.g),
                ),
                None => (mult_cost + diag as f64, "fc diag".to_string()),
            }
        }
        LinearLayer::Conv(c) => {
            let plan = ReducePlan::choose(c.ci, &cost);
            // Dead taps skip their rotation and dead masks their multiply:
            // the blunt Table-IV rotate bill scales with the live fraction.
            let label = if live_frac < 1.0 {
                format!("conv sparse reduce {plan:?} live={live_frac:.2}")
            } else {
                format!("conv reduce {plan:?}")
            };
            (
                mult_cost + ops.he_rotate * live_frac * cost.he_rotate_mults() as f64,
                label,
            )
        }
    }
}

/// Solves for one chain + per-layer levels/plans across a network's
/// linear layers: for every candidate chain, every layer picks its
/// cheapest feasible level (noise budget ≥ 2 bits under `regime` on the
/// exact chain); the candidate with the least network total wins.
///
/// # Errors
///
/// [`InfeasibleLayer`] when some layer is infeasible on **every**
/// candidate — its precision request cannot be met by any swept chain.
pub fn solve_chain_plan(
    layers: &[LinearLayer],
    quant: &QuantSpec,
    schedule: Schedule,
    regime: NoiseRegime,
    degrees: &[usize],
) -> Result<ChainPlan, InfeasibleLayer> {
    solve_chain_plan_structured(layers, None, quant, schedule, regime, degrees)
}

/// [`solve_chain_plan`] under measured weight structures (one per layer,
/// network order): every layer is priced — cost *and* noise — at its
/// post-sparsity op counts, so sparser layers can afford deeper levels
/// and the chain total reflects the rotations the prepared kernels will
/// actually perform. `None` (or a `structures` length mismatch, which
/// panics) reproduces the dense solve exactly.
///
/// # Errors
///
/// Same conditions as [`solve_chain_plan`].
///
/// # Panics
///
/// Panics when `structures` is `Some` with a length ≠ `layers.len()`.
pub fn solve_chain_plan_structured(
    layers: &[LinearLayer],
    structures: Option<&[LayerStructure]>,
    quant: &QuantSpec,
    schedule: Schedule,
    regime: NoiseRegime,
    degrees: &[usize],
) -> Result<ChainPlan, InfeasibleLayer> {
    if let Some(s) = structures {
        assert_eq!(s.len(), layers.len(), "one structure per linear layer");
    }
    let structure_of = |i: usize| structures.map(|s| &s[i]);
    let needed_bits: Vec<u32> = layers
        .iter()
        .map(|l| quant.statistical_plain_bits(l))
        .collect();
    let mut best: Option<ChainPlan> = None;
    let mut first_failure: Option<InfeasibleLayer> = None;
    'candidates: for (name, params) in chain_candidates(degrees) {
        let t_bits = 64 - params.plain_modulus().value().leading_zeros();
        let mut plan_layers = Vec::with_capacity(layers.len());
        let mut total = 0.0;
        for (i, (layer, &needed)) in layers.iter().zip(&needed_bits).enumerate() {
            if t_bits < needed {
                first_failure.get_or_insert_with(|| InfeasibleLayer {
                    layer: layer.name().to_owned(),
                    t_bits: needed,
                });
                continue 'candidates;
            }
            let mut chosen: Option<LayerPlan> = None;
            for level in 0..params.levels() {
                let noise = layer_noise_on_chain_structured(
                    layer,
                    structure_of(i),
                    &params,
                    level,
                    schedule,
                    regime,
                );
                if noise.budget_bits < PLAN_MARGIN_BITS {
                    continue;
                }
                let (int_mults, label) = layer_cost_on_chain_structured(
                    layer,
                    structure_of(i),
                    &params,
                    level,
                    schedule,
                );
                if chosen.as_ref().is_none_or(|c| int_mults < c.int_mults) {
                    chosen = Some(LayerPlan {
                        layer: layer.name().to_owned(),
                        level,
                        plan: label,
                        int_mults,
                        budget_bits: noise.budget_bits,
                    });
                }
            }
            let Some(plan) = chosen else {
                first_failure.get_or_insert_with(|| InfeasibleLayer {
                    layer: layer.name().to_owned(),
                    t_bits: needed,
                });
                continue 'candidates;
            };
            total += plan.int_mults;
            plan_layers.push(plan);
        }
        if best.as_ref().is_none_or(|b| total < b.total_int_mults) {
            best = Some(ChainPlan {
                name,
                params,
                schedule,
                layers: plan_layers,
                total_int_mults: total,
            });
        }
    }
    best.ok_or_else(|| {
        first_failure.unwrap_or_else(|| InfeasibleLayer {
            layer: layers
                .first()
                .map(|l| l.name().to_owned())
                .unwrap_or_default(),
            t_bits: 0,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_nn::{ConvSpec, FcSpec};

    fn tiny_layers() -> Vec<LinearLayer> {
        vec![
            LinearLayer::Conv(ConvSpec {
                name: "c1".into(),
                w: 8,
                fw: 3,
                ci: 1,
                co: 4,
                stride: 1,
                pad: 1,
            }),
            LinearLayer::Fc(FcSpec {
                name: "fc1".into(),
                ni: 64,
                no: 10,
            }),
        ]
    }

    #[test]
    fn solver_produces_a_full_plan_for_the_tiny_cnn() {
        let plan = solve_chain_plan(
            &tiny_layers(),
            &QuantSpec::default(),
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &[4096, 8192],
        )
        .expect("tiny CNN must be solvable");
        assert_eq!(plan.layers.len(), 2);
        assert_eq!(plan.levels().len(), 2);
        assert!(plan.total_int_mults > 0.0);
        for lp in &plan.layers {
            assert!(
                lp.level < plan.params.levels(),
                "{}: level in range",
                lp.layer
            );
            assert!(lp.budget_bits >= PLAN_MARGIN_BITS, "{}: margin", lp.layer);
            assert!(!lp.plan.is_empty());
        }
    }

    #[test]
    fn solver_prefers_a_hybrid_chain_when_rotation_noise_bites() {
        // Under Sched-IA every input slot already carries one key-switch
        // additive, so digit chains pay their `l_ct·A·B` rotate term
        // inside the multiplicative product while the hybrid term is
        // `P`-divided to nothing — the solver must notice and pick a
        // special-prime chain.
        let layers = vec![LinearLayer::Fc(FcSpec {
            name: "fc".into(),
            ni: 64,
            no: 32,
        })];
        let plan = solve_chain_plan(
            &layers,
            &QuantSpec::default(),
            Schedule::InputAligned,
            NoiseRegime::Statistical,
            &[4096],
        )
        .unwrap();
        assert!(
            plan.params.has_special(),
            "rotation-noise-bound nets should pick a hybrid chain, got {}",
            plan.name
        );
    }

    #[test]
    fn chain_noise_model_feasible_levels_shrink_with_depth() {
        // Budget at deeper levels of a congruent chain stays within a few
        // bits of level 0 (the modulus switch divides noise and ceiling
        // alike), while the cost strictly drops — which is why the solver
        // plans the deepest feasible level.
        let params = BfvParams::preset_hybrid_2x36(4096).unwrap();
        let layer = &tiny_layers()[0];
        let l0 = layer_noise_on_chain(
            layer,
            &params,
            0,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
        );
        let l1 = layer_noise_on_chain(
            layer,
            &params,
            1,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
        );
        assert!(l0.budget_bits > 0.0);
        let c0 =
            layer_cost_on_chain_structured(layer, None, &params, 0, Schedule::PartialAligned).0;
        let c1 =
            layer_cost_on_chain_structured(layer, None, &params, 1, Schedule::PartialAligned).0;
        assert!(c1 < c0, "deeper level must be cheaper: {c1} vs {c0}");
        // The level-1 ceiling is one 36-bit limb; the budget moves but
        // the model must not explode (rotate noise is P-divided).
        assert!(
            l1.noise_log2 < l0.noise_log2 + 40.0,
            "hybrid rotate noise must not blow up at depth"
        );
    }

    #[test]
    fn candidates_cover_digit_and_hybrid_presets() {
        let cands = chain_candidates(&[4096]);
        assert!(cands.iter().any(|(_, p)| p.has_special()));
        assert!(cands.iter().any(|(_, p)| !p.has_special()));
        assert!(cands.iter().all(|(_, p)| p.degree() == 4096));
    }

    #[test]
    fn structured_solve_prices_sparsity_cheaper_never_costlier() {
        use crate::sparse::{FcStructure, LayerStructure};
        let layers = tiny_layers();
        let quant = QuantSpec::default();
        let dense = solve_chain_plan(
            &layers,
            &quant,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &[4096],
        )
        .unwrap();
        // 90%-sparse FC structure (6 of 64 diagonals live), dense conv.
        let fc = &layers[1];
        let (no, ni) = (10usize, 64usize);
        let mut w = vec![0i64; no * ni];
        for k in [0usize, 7, 19, 33, 42, 60] {
            for off in 0..ni {
                w[(off % no) * ni + (off + k) % ni] = 3;
            }
        }
        let structures = vec![
            LayerStructure::dense(&layers[0]),
            LayerStructure::Fc(FcStructure::analyze(&w, no, ni)),
        ];
        let sparse = solve_chain_plan_structured(
            &layers,
            Some(&structures),
            &quant,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &[4096],
        )
        .unwrap();
        assert!(
            sparse.total_int_mults < dense.total_int_mults,
            "post-sparsity pricing must shrink the chain total: {} vs {}",
            sparse.total_int_mults,
            dense.total_int_mults
        );
        assert!(
            sparse.layers[1].plan.starts_with("fc sparse"),
            "sparse FC must be planned sparse, got {}",
            sparse.layers[1].plan
        );
        assert_eq!(fc.name(), "fc1");
        // Dense structures reproduce the dense solve bit for bit.
        let dense_structs: Vec<LayerStructure> = layers.iter().map(LayerStructure::dense).collect();
        let redone = solve_chain_plan_structured(
            &layers,
            Some(&dense_structs),
            &quant,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &[4096],
        )
        .unwrap();
        assert_eq!(redone.total_int_mults, dense.total_int_mults);
        assert_eq!(redone.name, dense.name);
    }

    #[test]
    fn infeasible_precision_is_a_typed_error() {
        // A 40-bit-plus precision request exceeds every preset's t.
        let layers = vec![LinearLayer::Fc(FcSpec {
            name: "wide".into(),
            ni: 64,
            no: 8,
        })];
        let quant = QuantSpec {
            weight_bits: 20,
            activation_bits: 20,
            ..QuantSpec::default()
        };
        let err = solve_chain_plan(
            &layers,
            &quant,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &[4096],
        )
        .unwrap_err();
        assert_eq!(err.layer, "wide");
    }
}
