//! HE parameter space exploration (§IV-C).
//!
//! "Using a single set of HE parameters for all DNN layers results in poor
//! performance, as HE parameters are provisioned for the worst-case layer
//! noise. Using HE-PTune's models for noise and performance, parameters can
//! be readily tuned on a per-layer basis." The models are analytical, so
//! thousands of points per layer evaluate in microseconds.

use cheetah_bfv::params::max_log_q_128;
use cheetah_nn::LinearLayer;

use crate::cost::HeCostParams;
use crate::ptune::noise::{layer_noise, HeNoiseParams, NoiseRegime};
use crate::ptune::perf::layer_ops_scheduled;
use crate::schedule::Schedule;

/// Sentinel `w_dcmp_log2` meaning "no plaintext decomposition".
pub const NO_WINDOW: u32 = 63;

/// The HE-parameter search space.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneSpace {
    /// Candidate polynomial degrees.
    pub degrees: Vec<usize>,
    /// Candidate ciphertext-modulus sizes (bits).
    pub q_bits: Vec<u32>,
    /// Candidate `log2(A_dcmp)` values.
    pub a_dcmp_log2: Vec<u32>,
    /// Candidate `log2(W_dcmp)` values ([`NO_WINDOW`] disables windowing).
    pub w_dcmp_log2: Vec<u32>,
    /// Encryption noise σ.
    pub sigma: f64,
    /// Enforce the 128-bit RLWE security table.
    pub enforce_security: bool,
}

impl Default for TuneSpace {
    fn default() -> Self {
        Self {
            degrees: vec![2048, 4096, 8192, 16384],
            q_bits: vec![30, 34, 38, 42, 46, 50, 54, 58, 60],
            a_dcmp_log2: vec![2, 4, 6, 8, 10, 12, 16, 20, 24, 30],
            w_dcmp_log2: vec![NO_WINDOW, 12, 10, 8, 6, 5, 4, 3, 2],
            sigma: 3.2,
            enforce_security: true,
        }
    }
}

impl TuneSpace {
    /// A reduced space for fast tests.
    pub fn small() -> Self {
        Self {
            degrees: vec![2048, 4096, 8192],
            q_bits: vec![40, 50, 60],
            a_dcmp_log2: vec![4, 10, 20],
            w_dcmp_log2: vec![NO_WINDOW, 6],
            sigma: 3.2,
            enforce_security: true,
        }
    }

    /// Total candidate count per layer.
    pub fn size(&self) -> usize {
        self.degrees.len() * self.q_bits.len() * self.a_dcmp_log2.len() * self.w_dcmp_log2.len()
    }
}

/// One evaluated HE configuration for a layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Polynomial degree.
    pub n: usize,
    /// Plaintext modulus bits.
    pub t_bits: u32,
    /// Ciphertext modulus bits.
    pub q_bits: u32,
    /// `log2(A_dcmp)`.
    pub a_dcmp_log2: u32,
    /// `log2(W_dcmp)` ([`NO_WINDOW`] = none).
    pub w_dcmp_log2: u32,
    /// Modeled cost in integer multiplications ("Total MACs" in Fig. 3).
    pub int_mults: f64,
    /// Remaining noise budget in bits (negative = infeasible).
    pub budget_bits: f64,
}

impl DesignPoint {
    /// Whether the configuration decrypts correctly under the model.
    pub fn feasible(&self) -> bool {
        self.budget_bits >= 0.0
    }

    /// `l_pt` implied by the configuration.
    pub fn l_pt(&self) -> usize {
        if self.w_dcmp_log2 >= self.t_bits {
            1
        } else {
            self.t_bits.div_ceil(self.w_dcmp_log2) as usize
        }
    }

    /// `l_ct` implied by the configuration.
    pub fn l_ct(&self) -> usize {
        self.q_bits.div_ceil(self.a_dcmp_log2) as usize
    }
}

/// Result of tuning one layer.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The minimum-cost feasible point, if any exists in the space.
    pub best: Option<DesignPoint>,
    /// Every evaluated point (the Fig. 3 scatter).
    pub points: Vec<DesignPoint>,
}

impl TuneOutcome {
    /// Fraction of evaluated points that are infeasible (the paper reports
    /// > 99 % for its space — finding parameters by hand is hard).
    pub fn infeasible_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let bad = self.points.iter().filter(|p| !p.feasible()).count();
        bad as f64 / self.points.len() as f64
    }
}

/// Evaluates a single configuration of the space for a layer.
///
/// The argument list mirrors the paper's parameter tuple `(n, q, t, A, W)`
/// plus the evaluation context — a struct would only obscure the mapping.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_point(
    layer: &LinearLayer,
    t_bits: u32,
    n: usize,
    q_bits: u32,
    a_dcmp_log2: u32,
    w_dcmp_log2: u32,
    sigma: f64,
    schedule: Schedule,
    regime: NoiseRegime,
) -> DesignPoint {
    let noise_params = HeNoiseParams {
        n,
        t_bits,
        q_bits,
        w_dcmp: 1u64 << w_dcmp_log2.min(62),
        a_dcmp: 1u64 << a_dcmp_log2.min(62),
        sigma,
    };
    let l_pt = noise_params.l_pt();
    let l_ct = noise_params.l_ct();
    let noise = layer_noise(layer, &noise_params, schedule, regime);
    // The tuner sweeps single-word ciphertext moduli (q_bits ≤ 62).
    let cost_params = HeCostParams {
        n,
        l_pt,
        l_ct,
        limbs: 1,
        hybrid: false,
    };
    let int_mults = layer_ops_scheduled(layer, n, l_pt, schedule).int_mults(&cost_params);
    DesignPoint {
        n,
        t_bits,
        q_bits,
        a_dcmp_log2,
        w_dcmp_log2,
        int_mults,
        budget_bits: noise.budget_bits,
    }
}

/// Explores the space for one layer and returns the cheapest feasible
/// configuration plus the full scatter.
pub fn tune_layer(
    layer: &LinearLayer,
    t_bits: u32,
    schedule: Schedule,
    regime: NoiseRegime,
    space: &TuneSpace,
) -> TuneOutcome {
    let mut points = Vec::with_capacity(space.size());
    let mut best: Option<DesignPoint> = None;
    for &n in &space.degrees {
        let max_q = if space.enforce_security {
            max_log_q_128(n).unwrap_or(0).min(62)
        } else {
            62
        };
        for &q_bits in &space.q_bits {
            if q_bits > max_q || q_bits < t_bits + 2 {
                continue;
            }
            for &a_log in &space.a_dcmp_log2 {
                for &w_log in &space.w_dcmp_log2 {
                    let point = evaluate_point(
                        layer,
                        t_bits,
                        n,
                        q_bits,
                        a_log,
                        w_log,
                        space.sigma,
                        schedule,
                        regime,
                    );
                    if point.feasible() && best.is_none_or(|b| point.int_mults < b.int_mults) {
                        best = Some(point);
                    }
                    points.push(point);
                }
            }
        }
    }
    TuneOutcome { best, points }
}

/// A layer for which the swept space holds no feasible configuration —
/// the typed replacement for the panic the tuner used to raise. A caller
/// widens the space (or relaxes the precision request) and retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleLayer {
    /// Name of the first layer with no feasible point.
    pub layer: String,
    /// The plaintext precision (bits) the layer asked for.
    pub t_bits: u32,
}

impl std::fmt::Display for InfeasibleLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no feasible HE parameters for layer {} (t = {} bits)",
            self.layer, self.t_bits
        )
    }
}

impl std::error::Error for InfeasibleLayer {}

/// Per-layer tuning for a whole network: returns `(layer, best point)` in
/// layer order.
///
/// # Errors
///
/// [`InfeasibleLayer`] naming the first layer with no feasible
/// configuration in the space (a caller widens the space; the paper's
/// space always contains one for its benchmarks).
///
/// # Panics
///
/// Panics when `layers` and `t_bits_per_layer` disagree in length — a
/// caller bug, not a data condition.
pub fn tune_network(
    layers: &[LinearLayer],
    t_bits_per_layer: &[u32],
    schedule: Schedule,
    regime: NoiseRegime,
    space: &TuneSpace,
) -> Result<Vec<(LinearLayer, DesignPoint)>, InfeasibleLayer> {
    assert_eq!(layers.len(), t_bits_per_layer.len());
    layers
        .iter()
        .zip(t_bits_per_layer)
        .map(|(layer, &t_bits)| {
            let outcome = tune_layer(layer, t_bits, schedule, regime, space);
            let best = outcome.best.ok_or_else(|| InfeasibleLayer {
                layer: layer.name().to_owned(),
                t_bits,
            })?;
            Ok((layer.clone(), best))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_nn::{models, ConvSpec, FcSpec};

    fn mid_conv() -> LinearLayer {
        LinearLayer::Conv(ConvSpec {
            name: "c".into(),
            w: 28,
            fw: 3,
            ci: 64,
            co: 64,
            stride: 1,
            pad: 1,
        })
    }

    #[test]
    fn tuner_finds_feasible_config_for_mid_conv() {
        let out = tune_layer(
            &mid_conv(),
            18,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        );
        let best = out.best.expect("feasible point exists");
        assert!(best.feasible());
        assert!(best.int_mults > 0.0);
    }

    #[test]
    fn most_points_are_infeasible() {
        // §IV-C: "over 99% have a negative remaining noise budget".
        let out = tune_layer(
            &mid_conv(),
            18,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        );
        assert!(
            out.infeasible_fraction() > 0.5,
            "only {:.0}% infeasible",
            out.infeasible_fraction() * 100.0
        );
    }

    #[test]
    fn pa_config_no_costlier_than_ia() {
        // Sched-PA's noise headroom must buy a cheaper (or equal) config.
        let layer = mid_conv();
        let space = TuneSpace::default();
        let pa = tune_layer(
            &layer,
            18,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &space,
        )
        .best
        .unwrap();
        let ia = tune_layer(
            &layer,
            18,
            Schedule::InputAligned,
            NoiseRegime::Statistical,
            &space,
        )
        .best
        .unwrap();
        assert!(pa.int_mults <= ia.int_mults);
    }

    #[test]
    fn statistical_regime_beats_worst_case_cost() {
        let layer = mid_conv();
        let space = TuneSpace::default();
        let stat = tune_layer(
            &layer,
            18,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &space,
        )
        .best
        .unwrap();
        let worst = tune_layer(
            &layer,
            18,
            Schedule::PartialAligned,
            NoiseRegime::WorstCase,
            &space,
        )
        .best;
        // Worst-case may simply have no feasible point.
        if let Some(w) = worst {
            assert!(stat.int_mults <= w.int_mults);
        }
    }

    #[test]
    fn resnet50_all_layers_tunable() {
        let quant = crate::quant::QuantSpec::default();
        let layers = models::resnet50().linear_layers();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let space = TuneSpace::default();
        let tuned = tune_network(
            &layers,
            &t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &space,
        )
        .unwrap();
        assert_eq!(tuned.len(), 54);
        // Per-layer configs should differ across the network (the whole
        // point of per-layer tuning).
        let distinct: std::collections::HashSet<(usize, u32, u32)> = tuned
            .iter()
            .map(|(_, p)| (p.n, p.q_bits, p.a_dcmp_log2))
            .collect();
        assert!(distinct.len() > 1, "tuning collapsed to one config");
    }

    #[test]
    fn fc_layer_tunable() {
        let layer = LinearLayer::Fc(FcSpec {
            name: "fc".into(),
            ni: 784,
            no: 300,
        });
        let out = tune_layer(
            &layer,
            16,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        );
        assert!(out.best.is_some());
    }

    #[test]
    fn security_restricts_small_degrees() {
        // With enforcement, n = 2048 cannot use q = 60.
        let mut space = TuneSpace::small();
        space.degrees = vec![2048];
        space.q_bits = vec![60];
        let out = tune_layer(
            &mid_conv(),
            18,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &space,
        );
        assert!(out.points.is_empty(), "insecure points must be skipped");
        let mut relaxed = space.clone();
        relaxed.enforce_security = false;
        let out2 = tune_layer(
            &mid_conv(),
            18,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &relaxed,
        );
        assert!(!out2.points.is_empty());
    }

    #[test]
    fn design_point_level_accessors() {
        let p = DesignPoint {
            n: 4096,
            t_bits: 20,
            q_bits: 60,
            a_dcmp_log2: 20,
            w_dcmp_log2: NO_WINDOW,
            int_mults: 1.0,
            budget_bits: 1.0,
        };
        assert_eq!(p.l_pt(), 1);
        assert_eq!(p.l_ct(), 3);
        let p2 = DesignPoint {
            w_dcmp_log2: 6,
            a_dcmp_log2: 7,
            ..p
        };
        assert_eq!(p2.l_pt(), 4); // ceil(20/6)
        assert_eq!(p2.l_ct(), 9); // ceil(60/7)
    }
}
