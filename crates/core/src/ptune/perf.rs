//! HE-PTune performance model — Table IV of the paper.
//!
//! Counts `HE_Mult` and `HE_Rotate` operators per CNN/FC layer as a
//! function of layer hyperparameters and HE parameters, then reduces them
//! to integer multiplications via [`crate::cost`]. Two CNN cases (ciphertext
//! holds ≥ 1 image, or an image spans > 1 ciphertext) and four FC cases
//! (each side of the matrix larger or smaller than `n`).

use cheetah_nn::{ConvSpec, FcSpec, LinearLayer};

use crate::cost::{HeCostParams, KernelTally};
use crate::schedule::Schedule;

/// HE-operator counts for one layer (may be fractional: the models are
/// asymptotic rates, exactly as the paper presents them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpModel {
    /// `HE_Mult` invocations.
    pub he_mult: f64,
    /// `HE_Rotate` invocations.
    pub he_rotate: f64,
    /// `HE_Add` invocations (≈ one per partial; not in Table IV but needed
    /// for the Fig. 7 breakdown — adds contribute no multiplications).
    pub he_add: f64,
}

impl OpModel {
    /// Expands operator counts into a kernel tally (NTT count =
    /// `(l_ct + 1)` per rotation, per §IV-A).
    pub fn tally(&self, p: &HeCostParams) -> KernelTally {
        KernelTally {
            he_mult: self.he_mult,
            he_rotate: self.he_rotate,
            he_add: self.he_add,
            ntt: self.he_rotate * p.ntts_per_rotate() as f64,
        }
    }

    /// Total integer multiplications under `p`.
    pub fn int_mults(&self, p: &HeCostParams) -> f64 {
        self.tally(p).total_int_mults(p)
    }
}

/// Table IV, CNN rows. `n` is the slot count, `l_pt` the plaintext
/// decomposition level.
///
/// `c_n` is the number of image channels per ciphertext (`n/w²`) when the
/// ciphertext is at least an image, else the number of ciphertexts per
/// channel (`w²/n`).
pub fn conv_ops(c: &ConvSpec, n: usize, l_pt: usize) -> OpModel {
    conv_ops_scheduled(c, n, l_pt, Schedule::PartialAligned)
}

/// Schedule-aware CNN counts: under Sched-IA the rotations act on the
/// `l_pt` windowed *input* ciphertexts (rotate-then-multiply), so the
/// rotation count scales with `l_pt`; under Sched-PA the windowed partial
/// products are accumulated *before* alignment, so it does not. This is
/// the "substantial ciphertext and plaintext decomposition" overhead §V-C
/// attributes to Sched-IA.
pub fn conv_ops_scheduled(c: &ConvSpec, n: usize, l_pt: usize, schedule: Schedule) -> OpModel {
    let w2 = (c.w * c.w) as f64;
    let fw2 = (c.fw * c.fw) as f64;
    let (ci, co) = (c.ci as f64, c.co as f64);
    let nf = n as f64;
    let l_pt = l_pt as f64;
    let rot_scale = match schedule {
        Schedule::InputAligned => l_pt,
        Schedule::PartialAligned => 1.0,
    };
    if nf >= w2 {
        let cn = (nf / w2).floor().max(1.0);
        let he_mult = l_pt * ci * co * fw2 / cn;
        let he_rotate = rot_scale * ci * co * fw2 / cn;
        OpModel {
            he_mult,
            he_rotate,
            he_add: he_mult.max(he_rotate),
        }
    } else {
        let cn = (w2 / nf).ceil().max(1.0);
        let he_mult = l_pt * (2.0 * cn - 1.0) * ci * co * fw2;
        let he_rotate = rot_scale * (2.0 * cn - 1.0) * ci * co * (fw2 - 1.0);
        OpModel {
            he_mult,
            he_rotate,
            he_add: he_mult,
        }
    }
}

/// Table IV, FC rows (all four size cases).
pub fn fc_ops(f: &FcSpec, n: usize, l_pt: usize) -> OpModel {
    fc_ops_scheduled(f, n, l_pt, Schedule::PartialAligned)
}

/// Schedule-aware FC counts (see [`conv_ops_scheduled`]).
pub fn fc_ops_scheduled(f: &FcSpec, n: usize, l_pt: usize, schedule: Schedule) -> OpModel {
    let (ni, no) = (f.ni as f64, f.no as f64);
    let nf = n as f64;
    let l_pt = l_pt as f64;
    let rot_scale = match schedule {
        Schedule::InputAligned => l_pt,
        Schedule::PartialAligned => 1.0,
    };
    let he_mult = l_pt * ni * no / nf;
    let he_rotate = rot_scale
        * if nf >= ni && nf >= no {
            (ni * no / nf - 1.0).max(0.0) + (nf / no).max(1.0).log2()
        } else if nf >= ni {
            // n >= ni, n < no
            (ni - 1.0) * no / nf
        } else if nf >= no {
            // n < ni, n >= no
            (no + (nf / no).max(1.0).log2()) * ni / nf
        } else {
            // n < ni, n < no
            (nf - 1.0) * ni * no / (nf * nf)
        };
    OpModel {
        he_mult,
        he_rotate,
        he_add: he_mult.max(he_rotate),
    }
}

/// Dispatches on layer kind (Sched-PA counts).
pub fn layer_ops(layer: &LinearLayer, n: usize, l_pt: usize) -> OpModel {
    layer_ops_scheduled(layer, n, l_pt, Schedule::PartialAligned)
}

/// Schedule-aware dispatch.
pub fn layer_ops_scheduled(
    layer: &LinearLayer,
    n: usize,
    l_pt: usize,
    schedule: Schedule,
) -> OpModel {
    match layer {
        LinearLayer::Conv(c) => conv_ops_scheduled(c, n, l_pt, schedule),
        LinearLayer::Fc(f) => fc_ops_scheduled(f, n, l_pt, schedule),
    }
}

/// Convenience: integer multiplications for a layer under HE parameters.
pub fn layer_int_mults(layer: &LinearLayer, p: &HeCostParams, l_pt: usize) -> f64 {
    layer_ops(layer, p.n, l_pt).int_mults(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(w: usize, fw: usize, ci: usize, co: usize) -> ConvSpec {
        ConvSpec {
            name: "c".into(),
            w,
            fw,
            ci,
            co,
            stride: 1,
            pad: fw / 2,
        }
    }

    fn fc(ni: usize, no: usize) -> FcSpec {
        FcSpec {
            name: "f".into(),
            ni,
            no,
        }
    }

    #[test]
    fn conv_large_n_case() {
        // n = 4096, w = 32 (w² = 1024) -> cn = 4 channels per ct.
        let m = conv_ops(&conv(32, 3, 16, 32), 4096, 1);
        assert!((m.he_mult - 16.0 * 32.0 * 9.0 / 4.0).abs() < 1e-9);
        assert!((m.he_rotate - 16.0 * 32.0 * 9.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn conv_small_n_case() {
        // n = 4096, w = 224 (w² = 50176) -> cn = ceil(50176/4096) = 13.
        let m = conv_ops(&conv(224, 3, 3, 64), 4096, 1);
        let cn = (50176.0f64 / 4096.0).ceil();
        assert!((m.he_mult - (2.0 * cn - 1.0) * 3.0 * 64.0 * 9.0).abs() < 1e-9);
        assert!((m.he_rotate - (2.0 * cn - 1.0) * 3.0 * 64.0 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn plaintext_decomposition_multiplies_mults_only() {
        let m1 = conv_ops(&conv(32, 3, 16, 32), 4096, 1);
        let m3 = conv_ops(&conv(32, 3, 16, 32), 4096, 3);
        assert!((m3.he_mult - 3.0 * m1.he_mult).abs() < 1e-9);
        assert!((m3.he_rotate - m1.he_rotate).abs() < 1e-9);
    }

    #[test]
    fn fc_all_four_cases_positive() {
        for (ni, no, n) in [
            (512usize, 128usize, 4096usize), // n >= both
            (512, 8192, 4096),               // n >= ni, n < no
            (8192, 128, 4096),               // n < ni, n >= no
            (8192, 8192, 4096),              // n < both
        ] {
            let m = fc_ops(&fc(ni, no), n, 1);
            assert!(m.he_mult > 0.0, "mult for ({ni},{no})");
            assert!(m.he_rotate > 0.0, "rotate for ({ni},{no})");
            assert!(
                (m.he_mult - (ni * no) as f64 / n as f64).abs() < 1e-9,
                "mult count is ni*no/n in every case"
            );
        }
    }

    #[test]
    fn fc_square_case_matches_paper_formula() {
        // n >= ni, n >= no: rot = ni*no/n - 1 + log2(n/no).
        let m = fc_ops(&fc(2048, 512), 4096, 1);
        let expect = (2048.0 * 512.0 / 4096.0 - 1.0) + (4096.0f64 / 512.0).log2();
        assert!((m.he_rotate - expect).abs() < 1e-9);
    }

    #[test]
    fn bigger_n_fewer_ops_but_costlier_ops() {
        // Growing n cuts operator counts per Table IV but each op costs
        // more integer mults — the tension HE-PTune navigates.
        let c = conv(32, 3, 16, 32);
        let ops_small = conv_ops(&c, 2048, 1);
        let ops_big = conv_ops(&c, 8192, 1);
        assert!(ops_big.he_mult < ops_small.he_mult);
        let p_small = HeCostParams {
            n: 2048,
            l_pt: 1,
            l_ct: 3,
            limbs: 1,
            hybrid: false,
        };
        let p_big = HeCostParams {
            n: 8192,
            l_pt: 1,
            l_ct: 3,
            limbs: 1,
            hybrid: false,
        };
        assert!(p_big.he_rotate_mults() > p_small.he_rotate_mults());
    }

    #[test]
    fn int_mults_consistent_with_tally() {
        let m = conv_ops(&conv(16, 3, 4, 8), 2048, 1);
        let p = HeCostParams {
            n: 2048,
            l_pt: 1,
            l_ct: 2,
            limbs: 1,
            hybrid: false,
        };
        let tally = m.tally(&p);
        assert_eq!(tally.ntt, m.he_rotate * 3.0);
        assert!((m.int_mults(&p) - tally.total_int_mults(&p)).abs() < 1e-9);
    }
}
