//! Dot-product schedules (§V, Fig. 5).

use std::fmt;

/// How HE dot products order rotations and multiplications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// Input-aligned (prior art / Gazelle): rotate the input ciphertext to
    /// the output slot *first*, then multiply. Multiplication acts on a
    /// rotated (noisier) ciphertext, so noise grows as `ηM·(v0 + ηA)` —
    /// which in practice forces plaintext decomposition (`l_pt > 1`).
    InputAligned,
    /// Partial-aligned (Cheetah's Sched-PA): multiply the *fresh* input
    /// first, then rotate the partial product into place. Noise grows as
    /// `ηM·v0 + ηA`, so no plaintext decomposition is needed
    /// ("With Sched-PA, Cheetah avoids all plaintext decomposition", §V-C).
    #[default]
    PartialAligned,
}

impl Schedule {
    /// Short display name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::InputAligned => "Sched-IA",
            Schedule::PartialAligned => "Sched-PA",
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_partial_aligned() {
        assert_eq!(Schedule::default(), Schedule::PartialAligned);
        assert_eq!(Schedule::PartialAligned.to_string(), "Sched-PA");
        assert_eq!(Schedule::InputAligned.label(), "Sched-IA");
    }
}
