//! Ablation: Barrett reduction vs naive `u128 %` modular multiplication,
//! and Shoup multiplication for fixed operands — justifying the
//! five-multiplication Barrett constant in the §IV-A cost model.

use cheetah_bfv::arith::{generate_ntt_prime, Modulus, ShoupPrecomp};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_reduction(c: &mut Criterion) {
    let q = Modulus::new(generate_ntt_prime(60, 4096).unwrap()).unwrap();
    let qv = q.value();
    let a = qv - 12345;
    let b = qv / 3 + 7;

    let mut group = c.benchmark_group("modmul");
    group.bench_function("barrett", |bench| {
        bench.iter(|| q.mul_mod(black_box(a), black_box(b)))
    });
    group.bench_function("u128_rem", |bench| {
        bench.iter(|| ((black_box(a) as u128 * black_box(b) as u128) % qv as u128) as u64)
    });
    let shoup = ShoupPrecomp::new(b, &q);
    group.bench_function("shoup_fixed_operand", |bench| {
        bench.iter(|| shoup.mul(black_box(a), &q))
    });
    group.finish();
}

fn bench_bulk_reduction(c: &mut Criterion) {
    let q = Modulus::new(generate_ntt_prime(60, 4096).unwrap()).unwrap();
    let data: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) % q.value())
        .collect();
    let w = q.value() / 5 + 3;
    let shoup = ShoupPrecomp::new(w, &q);

    let mut group = c.benchmark_group("pointwise_4096");
    group.bench_function("barrett", |bench| {
        bench.iter_batched(
            || data.clone(),
            |mut v| {
                for x in &mut v {
                    *x = q.mul_mod(*x, w);
                }
                v
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("shoup", |bench| {
        bench.iter_batched(
            || data.clone(),
            |mut v| {
                for x in &mut v {
                    *x = shoup.mul(*x, &q);
                }
                v
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_reduction, bench_bulk_reduction);
criterion_main!(benches);
