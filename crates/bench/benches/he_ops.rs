//! The three BFV operators at Cheetah parameters — HE_Add, HE_Mult (pt-ct),
//! HE_Rotate — plus the effect of the ciphertext decomposition base on
//! rotation cost (coarser `A_dcmp` → fewer digits → faster rotations, the
//! §V-C "8 to 16 more bits" effect).

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
    PreparedPlaintext,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

struct Ctx {
    eval: Evaluator,
    keys: GaloisKeys,
    ct: Ciphertext,
    ct2: Ciphertext,
    pt: PreparedPlaintext,
}

fn ctx(a_dcmp_log2: u32) -> Ctx {
    let params = BfvParams::builder()
        .degree(4096)
        .plain_bits(17)
        .cipher_bits(60)
        .a_dcmp(1 << a_dcmp_log2)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), 11);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1]).unwrap();
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 12);
    let eval = Evaluator::new(params.clone());
    let values: Vec<u64> = (0..4096u64).collect();
    let raw = encoder.encode(&values).unwrap();
    let ct = enc.encrypt(&raw).unwrap();
    let ct2 = enc.encrypt(&raw).unwrap();
    let pt = eval.prepare_plaintext(&raw).unwrap();
    Ctx {
        eval,
        keys,
        ct,
        ct2,
        pt,
    }
}

fn bench_operators(c: &mut Criterion) {
    let ctx = ctx(20);
    let mut group = c.benchmark_group("he_op_n4096");
    group.bench_function("add", |b| {
        b.iter(|| {
            ctx.eval
                .add(black_box(&ctx.ct), black_box(&ctx.ct2))
                .unwrap()
        })
    });
    group.bench_function("mul_plain", |b| {
        b.iter(|| ctx.eval.mul_plain(black_box(&ctx.ct), &ctx.pt).unwrap())
    });
    group.bench_function("rotate", |b| {
        b.iter(|| {
            ctx.eval
                .rotate_rows(black_box(&ctx.ct), 1, &ctx.keys)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_rotation_vs_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotate_by_a_dcmp");
    for a_log in [4u32, 8, 12, 20, 30] {
        let ctx = ctx(a_log);
        group.bench_with_input(BenchmarkId::new("a_dcmp_log2", a_log), &a_log, |b, _| {
            b.iter(|| {
                ctx.eval
                    .rotate_rows(black_box(&ctx.ct), 1, &ctx.keys)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators, bench_rotation_vs_decomposition);
criterion_main!(benches);
