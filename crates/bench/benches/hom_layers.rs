//! Full homomorphic layers under both schedules: the functional
//! Sched-PA / Sched-IA convolution and FC implementations on real
//! ciphertexts (Figs. 4-5 made measurable).

use cheetah_bfv::{BatchEncoder, BfvParams, Encryptor, Evaluator, GaloisKeys, KeyGenerator};
use cheetah_core::linear::{HomConv2d, HomFc};
use cheetah_core::Schedule;
use cheetah_nn::{ConvSpec, FcSpec, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn conv_spec() -> ConvSpec {
    ConvSpec {
        name: "bench".into(),
        w: 8,
        fw: 3,
        ci: 4,
        co: 2,
        stride: 1,
        pad: 1,
    }
}

fn fc_spec() -> FcSpec {
    FcSpec {
        name: "bench".into(),
        ni: 64,
        no: 16,
    }
}

fn bench_hom_conv(c: &mut Criterion) {
    let spec = conv_spec();
    let params = BfvParams::builder()
        .degree(4096)
        .plain_bits(16)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), 31);
    let pk = kg.public_key().unwrap();
    let keys: GaloisKeys = kg
        .galois_keys_for_steps(&HomConv2d::required_steps(&spec))
        .unwrap();
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 32);
    let eval = Evaluator::new(params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let weights = Tensor::from_data(
        &[spec.co, spec.ci, spec.fw, spec.fw],
        (0..spec.co * spec.ci * spec.fw * spec.fw)
            .map(|_| rng.random_range(-4..=4))
            .collect(),
    );
    let input = Tensor::from_data(
        &[spec.ci, spec.w, spec.w],
        (0..spec.ci * spec.w * spec.w)
            .map(|_| rng.random_range(-8..=8))
            .collect(),
    );
    let ct = enc
        .encrypt(&HomConv2d::encode_input(&spec, &input, &encoder).unwrap())
        .unwrap();

    let mut group = c.benchmark_group("hom_conv_8x8x4");
    for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
        let layer = HomConv2d::new(&spec, &weights, &encoder, &eval, schedule).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(schedule.label()),
            &schedule,
            |b, _| b.iter(|| layer.apply(&ct, &eval, &keys).unwrap()),
        );
    }
    group.finish();
}

fn bench_hom_fc(c: &mut Criterion) {
    let spec = fc_spec();
    let params = BfvParams::builder()
        .degree(4096)
        .plain_bits(16)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), 41);
    let pk = kg.public_key().unwrap();
    let keys = kg
        .galois_keys_for_steps(&HomFc::required_steps(&spec))
        .unwrap();
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 42);
    let eval = Evaluator::new(params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let weights = Tensor::from_data(
        &[spec.no, spec.ni],
        (0..spec.no * spec.ni)
            .map(|_| rng.random_range(-5..=5))
            .collect(),
    );
    let input = Tensor::from_data(
        &[spec.ni],
        (0..spec.ni).map(|_| rng.random_range(-9..=9)).collect(),
    );
    let ct = enc
        .encrypt(&HomFc::encode_input(&spec, &input, &encoder).unwrap())
        .unwrap();

    let mut group = c.benchmark_group("hom_fc_64x16");
    group.sample_size(10);
    for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
        let layer = HomFc::new(&spec, &weights, &encoder, &eval, schedule).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(schedule.label()),
            &schedule,
            |b, _| b.iter(|| layer.apply(&ct, &eval, &keys).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hom_conv, bench_hom_fc);
criterion_main!(benches);
