//! NTT microbenchmarks across the HE-PTune degree range — the primary HE
//! bottleneck (55.2 % of ResNet50 inference time in Fig. 7).

use cheetah_bfv::arith::{generate_ntt_prime, Modulus};
use cheetah_bfv::ntt::NttTable;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_forward");
    for n in [2048usize, 4096, 8192, 16384] {
        let q = Modulus::new(generate_ntt_prime(60, n).unwrap()).unwrap();
        let table = NttTable::new(n, q).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| i % q.value()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut v| {
                    table.forward(&mut v);
                    v
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ntt_inverse");
    for n in [2048usize, 4096, 8192] {
        let q = Modulus::new(generate_ntt_prime(60, n).unwrap()).unwrap();
        let table = NttTable::new(n, q).unwrap();
        let mut data: Vec<u64> = (0..n as u64).map(|i| i % q.value()).collect();
        table.forward(&mut data);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut v| {
                    table.inverse(&mut v);
                    v
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ntt);
criterion_main!(benches);
