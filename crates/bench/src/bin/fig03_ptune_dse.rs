//! Figure 3: HE-PTune parameter design-space exploration for AlexNet.
//!
//! (a)/(b): the scatter of evaluated HE configurations per layer ("Total
//! MACs" vs remaining noise budget), with the Gazelle global configuration
//! and the HE-PTune optimum highlighted. (c): per-layer speedup bars.

use cheetah_bench::{fmt_mults, heading};
use cheetah_core::baseline::gazelle_config;
use cheetah_core::ptune::{tune_layer, NoiseRegime, TuneSpace};
use cheetah_core::speedup::harmonic_mean;
use cheetah_core::{QuantSpec, Schedule};
use cheetah_nn::models;

fn main() {
    let net = models::alexnet();
    let quant = QuantSpec::default();
    let layers = net.linear_layers();
    let space = TuneSpace::default();

    // Gazelle: the legacy fixed configuration (worst layer precision).
    let t_global = quant.statistical_plain_bits_network(&layers);
    let gazelle = gazelle_config(&layers, t_global, space.sigma)
        .expect("Gazelle baseline must exist for AlexNet");

    heading("Figure 3 — HE parameter design-space exploration (AlexNet)");
    println!(
        "Gazelle global config: n=2^{}  q={}b  t={}b  A=2^{}  W=2^{}",
        gazelle.point.n.ilog2(),
        gazelle.point.q_bits,
        gazelle.point.t_bits,
        gazelle.point.a_dcmp_log2,
        gazelle.point.w_dcmp_log2,
    );
    println!(
        "space: {} candidate configurations per layer\n",
        space.size()
    );

    let mut speedups = Vec::new();
    println!(
        "{:<8} {:>6} {:>10} {:>9} | {:>10} {:>8} | {:>9} {:>9} {:>8}",
        "layer",
        "points",
        "infeas%",
        "t(bits)",
        "opt MACs",
        "budget",
        "gzl MACs",
        "gzlbudget",
        "speedup"
    );
    for (i, layer) in layers.iter().enumerate() {
        let t_bits = quant.statistical_plain_bits(layer);
        let outcome = tune_layer(
            layer,
            t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &space,
        );
        let best = outcome.best.expect("feasible point");
        let gzl_cost = gazelle.layer_costs[i];
        let gzl_budget = gazelle.layer_budgets[i];
        let speedup = gzl_cost / best.int_mults;
        speedups.push(speedup);
        println!(
            "{:<8} {:>6} {:>9.1}% {:>9} | {:>10} {:>7.1}b | {:>9} {:>8.1}b {:>7.2}x",
            layer.name(),
            outcome.points.len(),
            outcome.infeasible_fraction() * 100.0,
            t_bits,
            fmt_mults(best.int_mults),
            best.budget_bits,
            fmt_mults(gzl_cost),
            gzl_budget,
            speedup,
        );
    }
    println!(
        "\nharmonic-mean per-layer speedup: {:.2}x   max: {:.2}x",
        harmonic_mean(&speedups),
        speedups.iter().fold(0.0f64, |a, &b| a.max(b)),
    );

    // Scatter sample for one layer (paper plots Layer5/Layer0): dump a
    // decimated (MACs, budget) cloud for external plotting.
    heading("Scatter sample — first FC layer (cf. Fig. 3a)");
    let fc = layers
        .iter()
        .find(|l| matches!(l, cheetah_nn::LinearLayer::Fc(_)))
        .expect("AlexNet has FC layers");
    let outcome = tune_layer(
        fc,
        quant.statistical_plain_bits(fc),
        Schedule::PartialAligned,
        NoiseRegime::Statistical,
        &space,
    );
    println!("{:>12} {:>12}", "MACs", "budget(bits)");
    for p in outcome.points.iter().step_by(37) {
        println!("{:>12} {:>12.1}", fmt_mults(p.int_mults), p.budget_bits);
    }
    let best = outcome.best.unwrap();
    println!(
        "optimal: {} MACs at {:.1} bits remaining (paper finds optima leaving ~1 bit)",
        fmt_mults(best.int_mults),
        best.budget_bits
    );
}
