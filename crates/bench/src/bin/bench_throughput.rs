//! Serving-throughput benchmark: emits `BENCH_throughput.json` for the
//! concurrent inference service (`crates/serve`) on the 3-limb preset
//! chain.
//!
//! Two families of numbers:
//!
//! * **Serving-only scaling** — one shared [`PreparedModel`], fleets of
//!   1/4/16/64 simulated clients run through a [`ServerPool`]:
//!   `c{C}_sessions_per_sec` plus `c{C}_p50_ms` / `c{C}_p99_ms` session
//!   latency. The scheduler is lockstep-batched (every client at the
//!   lowest pending layer is swept before any client advances), so a
//!   session's latency is its fleet's wall time — batching deliberately
//!   trades tail latency for throughput and the numbers show it.
//! * **End-to-end 16-client comparison** — the headline amortization win
//!   gated by `scripts/check.sh`: `serial_16_sessions_per_sec` rebuilds
//!   the prepared model for every client (what 16 independent one-party
//!   sessions would do), `batched_16_sessions_per_sec` prepares once and
//!   serves the fleet through one pool. Client-side key generation is
//!   identical in both paths and happens off the server clock. On a
//!   single core the win is pure preparation amortization;
//!   `batched_over_serial_speedup` must stay > 1 in a committed full
//!   run.
//!
//! Run: `cargo run --release -p cheetah-bench --bin bench_throughput
//! [out.json]`
//!
//! Set `BENCH_SMOKE=1` for CI smoke mode: one repetition per point and a
//! trimmed fleet ladder budget; numbers are noisy but the emitted JSON
//! keys are identical, which is what `scripts/check.sh` gates on.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cheetah_bfv::BfvParams;
use cheetah_core::Schedule;
use cheetah_nn::inference::client_inputs;
use cheetah_nn::models::tiny_cnn;
use cheetah_nn::{Network, Tensor, Weights};
use cheetah_serve::{PreparedModel, ServerPool, SessionDriver};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The 3-limb preset with the decomposition base the protocol suites use.
fn bench_params() -> BfvParams {
    BfvParams::builder()
        .degree(4096)
        .plain_bits(17)
        .moduli_bits(&[36, 36, 36])
        .a_dcmp(1 << 6)
        .build()
        .expect("3-limb preset must build")
}

fn drivers(
    model: &Arc<PreparedModel>,
    net: &Network,
    count: usize,
    rep: usize,
) -> Vec<SessionDriver> {
    let inputs = client_inputs(&net.input_shape, 3, 7_100 + rep as u64 * 1_000, count);
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            SessionDriver::new(model, i as u64, 9_000 + rep as u64 * 100 + i as u64, input)
                .expect("client setup must succeed")
        })
        .collect()
}

fn assert_all_ok(outcomes: &[cheetah_serve::SessionOutcome], what: &str) -> Vec<Tensor> {
    outcomes
        .iter()
        .map(|o| match &o.result {
            Ok(t) => t.clone(),
            Err(e) => panic!("{what}: client {} failed: {e}", o.client_id),
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx]
}

/// One serving-only scaling point: `count` clients against the shared
/// model, `reps` repetitions with fresh inputs each time.
struct ScalePoint {
    count: usize,
    sessions_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn scale_point(
    model: &Arc<PreparedModel>,
    net: &Network,
    workers: usize,
    count: usize,
    reps: usize,
) -> ScalePoint {
    let pool = ServerPool::new(Arc::clone(model), workers);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(count * reps);
    let mut total_secs = 0.0f64;
    for rep in 0..reps {
        let fleet = drivers(model, net, count, rep);
        let start = Instant::now();
        let outcomes = pool.run(fleet);
        let wall = start.elapsed().as_secs_f64();
        assert_all_ok(&outcomes, "scale point");
        total_secs += wall;
        // Lockstep batching: every session in the fleet completes in the
        // final sweep, so its latency is the fleet's wall time.
        latencies_ms.extend(std::iter::repeat_n(wall * 1_000.0, count));
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    ScalePoint {
        count,
        sessions_per_sec: (count * reps) as f64 / total_secs,
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let params = bench_params();
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 424);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = cores.clamp(1, 4);
    let reps = if smoke() { 1 } else { 3 };

    // --- Serving-only scaling: one shared prepared model ---
    let shared = PreparedModel::prepare(&net, &weights, params.clone(), Schedule::PartialAligned)
        .expect("model preparation must succeed");
    let counts = [1usize, 4, 16, 64];
    let points: Vec<ScalePoint> = counts
        .iter()
        .map(|&c| scale_point(&shared, &net, workers, c, reps))
        .collect();

    // --- End-to-end 16-client comparison: amortized vs per-client prep ---
    //
    // Both fleets are constructed (client keygen + setup) before the
    // clocks start: key generation happens on the *client*, and it also
    // gets slower as resident memory grows, so leaving it on the server
    // clock would just measure allocation noise. Both fleets reference
    // the shared preparation — serving cost is identical under any
    // equal-parameter preparation — and the serial server's per-client
    // model rebuild is executed in full inside its timer, exactly the
    // build a shared-nothing server pays for every arriving client.
    const FLEET: usize = 16;
    let serial_fleet = drivers(&shared, &net, FLEET, 0);
    let batched_fleet = drivers(&shared, &net, FLEET, 0);

    let start = Instant::now();
    let mut serial_outputs = Vec::with_capacity(FLEET);
    for driver in serial_fleet {
        let own = PreparedModel::prepare(&net, &weights, params.clone(), Schedule::PartialAligned)
            .expect("model preparation must succeed");
        let pool = ServerPool::new(own, 1);
        serial_outputs.extend(assert_all_ok(&pool.run(vec![driver]), "serial baseline"));
    }
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let batched_model =
        PreparedModel::prepare(&net, &weights, params.clone(), Schedule::PartialAligned)
            .expect("model preparation must succeed");
    let pool = ServerPool::new(batched_model, workers);
    let batched_outputs = assert_all_ok(&pool.run(batched_fleet), "batched");
    let batched_secs = start.elapsed().as_secs_f64();

    // The speedup is only meaningful if both paths computed the same
    // thing — pin bit-identity before reporting numbers.
    for (i, (s, b)) in serial_outputs.iter().zip(&batched_outputs).enumerate() {
        assert_eq!(
            s.data(),
            b.data(),
            "client {i}: serial and batched outputs diverged"
        );
    }

    let serial_sps = FLEET as f64 / serial_secs;
    let batched_sps = FLEET as f64 / batched_secs;
    let speedup = serial_secs / batched_secs;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"degree\": 4096,");
    let _ = writeln!(json, "  \"limbs\": {},", params.limbs());
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"scaling\": {{");
    for (idx, p) in points.iter().enumerate() {
        let c = p.count;
        let trail = if idx + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"c{c}_sessions_per_sec\": {:.3},",
            p.sessions_per_sec
        );
        let _ = writeln!(json, "    \"c{c}_p50_ms\": {:.1},", p.p50_ms);
        let _ = writeln!(json, "    \"c{c}_p99_ms\": {:.1}{trail}", p.p99_ms);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fleet_16\": {{");
    let _ = writeln!(json, "    \"serial_16_sessions_per_sec\": {serial_sps:.3},");
    let _ = writeln!(
        json,
        "    \"batched_16_sessions_per_sec\": {batched_sps:.3},"
    );
    let _ = writeln!(json, "    \"batched_over_serial_speedup\": {speedup:.3}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
