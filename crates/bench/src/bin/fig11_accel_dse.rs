//! Figure 11: full accelerator design-space exploration for ResNet50 —
//! (a) the power-latency Pareto frontier, (b) runtime breakdown, (c) area
//! breakdown — plus the paper's headline: near-plaintext ResNet50 HE
//! inference at ~30 W and ~545 mm² in 5 nm.

use cheetah_accel::explore::{explore, ArchSweep};
use cheetah_accel::workload::NetworkWork;
use cheetah_accel::NODE_5NM;
use cheetah_bench::{heading, tune_model};
use cheetah_core::{Schedule, TuneSpace};
use cheetah_nn::models;

fn main() {
    let net = models::resnet50();
    let tuned = tune_model(&net, Schedule::PartialAligned, &TuneSpace::default());
    let work = NetworkWork::from_tuned(&net.name, &tuned);
    println!(
        "ResNet50 workload: {} layers, {} output CTs, {:.0} partials total ({:.1} per CT)",
        work.layers.len(),
        work.total_out_cts(),
        work.total_partials(),
        work.mean_partials_per_out_ct()
    );

    let outcome = explore(&work, &ArchSweep::default(), NODE_5NM);

    heading("Figure 11a — power-latency Pareto frontier (5 nm)");
    println!(
        "{:>4} {:>6} {:>12} {:>10} {:>11} {:>9} {:>7}",
        "PEs", "lanes", "latency(ms)", "power(W)", "area(mm2)", "laneUtil", "netIO"
    );
    for (i, r) in outcome.frontier.iter().enumerate() {
        println!(
            "{:>4} {:>6} {:>12.1} {:>10.1} {:>11.0} {:>8.0}% {:>6.0}%  [{}]",
            r.pes,
            r.lanes_per_pe,
            r.latency_s * 1e3,
            r.power_w,
            r.area_mm2,
            r.mean_lane_utilization * 100.0,
            r.network_io_utilization * 100.0,
            i
        );
    }

    heading("Figure 11b — runtime breakdown per Pareto design");
    println!(
        "{:>4} {:>4}x{:<5} {:>11} {:>8} {:>12} {:>10}",
        "pt", "PEs", "lanes", "transforms", "mult", "rotate-other", "reduction"
    );
    for (i, r) in outcome.frontier.iter().enumerate() {
        println!(
            "{:>4} {:>4}x{:<5} {:>10.0}% {:>7.0}% {:>11.0}% {:>9.0}%",
            i,
            r.pes,
            r.lanes_per_pe,
            r.time.transforms * 100.0,
            r.time.mult * 100.0,
            r.time.rotate_other * 100.0,
            r.time.reduction * 100.0
        );
    }

    heading("Figure 11c — area breakdown per Pareto design (5 nm, mm²)");
    println!(
        "{:>4} {:>4}x{:<5} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "pt", "PEs", "lanes", "laneSRAM", "NTT", "peSRAM", "other", "total"
    );
    for (i, r) in outcome.frontier.iter().enumerate() {
        println!(
            "{:>4} {:>4}x{:<5} {:>10.0} {:>9.0} {:>9.0} {:>9.0} {:>10.0}",
            i,
            r.pes,
            r.lanes_per_pe,
            r.area.lane_sram_mm2,
            r.area.ntt_compute_mm2,
            r.area.pe_sram_mm2,
            r.area.other_compute_mm2,
            r.area_mm2
        );
    }

    heading("Headline — design meeting 100 ms plaintext-class latency");
    match outcome.design_for_target(0.1) {
        Some(r) => println!(
            "{} PEs x {} lanes: {:.1} ms, {:.1} W, {:.0} mm2 @5nm\n(paper: 8x512, 100 ms, ~30 W, ~545 mm2 @5nm)",
            r.pes,
            r.lanes_per_pe,
            r.latency_s * 1e3,
            r.power_w,
            r.area_mm2
        ),
        None => {
            let fastest = outcome.fastest().expect("non-empty frontier");
            println!(
                "no design met 100 ms; fastest is {} PEs x {} lanes at {:.1} ms, {:.1} W, {:.0} mm2",
                fastest.pes,
                fastest.lanes_per_pe,
                fastest.latency_s * 1e3,
                fastest.power_w,
                fastest.area_mm2
            );
        }
    }
}
