//! Machine-readable hot-path benchmark: emits `BENCH_he_ops.json` with
//! ns/op for the three HE operators (allocating vs in-place/scratch
//! variants), the contiguous batched NTT (serial vs threaded), and a
//! per-limb-count section (1/2/3-limb RNS chains) so the cost of the
//! modulus chain is trackable across PRs. Multi-limb presets also report
//! the leveled primitives — `l{2,3}_mod_switch` (dropping a limb) and
//! `l{2,3}_rotate_level1` (rotating after one drop) — demonstrating that
//! reduced-level rotations are measurably cheaper than full-level ones —
//! and the FC-layer pair `l{2,3}_fc_bsgs` vs `l{2,3}_fc_diag` (plus
//! `_level1` variants): the Baby-Step-Giant-Step reshape against the
//! legacy diagonal method on the same weights, the headline win of the
//! hoistable-rotation-set work (`scripts/check.sh` fails a committed full
//! run where BSGS does not beat the diagonal path on the 3-limb preset).
//!
//! The special-prime hybrid key-switch path is benchmarked against its
//! **equal-total-plane-count** digit twin: `l2_rotate_hybrid`
//! (hybrid_1x54 — 1 data limb + `P`, two planes) pairs with `l2_rotate`
//! (rns_2x30 — two data limbs), and `l3_rotate_hybrid` (hybrid_2x36)
//! pairs with `l3_rotate` (rns_3x36). Same RLWE modulus width, same wire
//! size, same security budget; per rotation the hybrid path runs
//! `live² + 6·live + 2` plane transforms against the digit path's
//! `(l_ct + 1)·live`. `scripts/check.sh` fails a committed full run where
//! the hybrid rotation does not beat its digit twin. `hoist_hybrid` is
//! the one-time hoist on the hybrid chain (`ops_ns` section).
//!
//! The scalar-vs-vector pairs pin the SIMD work: `ntt` / `ntt_simd`
//! (a 4096-point forward+inverse roundtrip under the forced scalar
//! reference vs the runtime-detected backend) and the per-preset
//! `l{1,2,3}_rotate` / `l{1,2,3}_rotate_simd` twins. The unsuffixed keys
//! are **pinned to the scalar backend** so their history stays comparable
//! across the SIMD work; the `_simd` twins run whatever
//! `cheetah_bfv::simd::detect()` picks. Without `--features simd` both
//! halves clamp to scalar and the pairs read equal — the keys are emitted
//! unconditionally so the smoke-mode key-regression gate holds in every
//! build.
//!
//! Run: `cargo run --release -p cheetah-bench --bin bench_he_ops [out.json]`
//!
//! Set `BENCH_SMOKE=1` for CI smoke mode: the measurement budget drops to
//! milliseconds per op; numbers are noisy but the emitted JSON keys are
//! identical, which is what `scripts/check.sh` gates on.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use cheetah_bfv::batch::PolyBatch;
use cheetah_bfv::poly::Representation;
use cheetah_bfv::simd::{self, SimdBackend};
use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Encryptor, Evaluator, GaloisKeys, HoistedDecomposition,
    KeyGenerator, PreparedPlaintext, Scratch,
};
use cheetah_core::linear::HomFc;
use cheetah_core::Schedule;
use cheetah_gpu::batched::batched_forward;
use cheetah_nn::{FcSpec, Tensor};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Times `f` with an adaptive iteration count (~0.5 s budget after one
/// calibration call; ~5 ms in smoke mode) and returns mean ns/op.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let budget: u128 = if smoke() { 5_000_000 } else { 500_000_000 };
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1);
    let iters = (budget / once).clamp(3, 20_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs `f` with the kernel backend forced to `b` (`None` = runtime
/// detection), restoring automatic detection afterwards.
fn with_backend<T>(b: Option<SimdBackend>, f: impl FnOnce() -> T) -> T {
    simd::force_backend(b);
    let out = f();
    simd::force_backend(None);
    out
}

struct Ctx {
    eval: Evaluator,
    keys: GaloisKeys,
    ct: Ciphertext,
    ct2: Ciphertext,
    pt: PreparedPlaintext,
}

fn ctx_for(params: BfvParams) -> Ctx {
    let mut kg = KeyGenerator::from_seed(params.clone(), 11);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1]).unwrap();
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 12);
    let eval = Evaluator::new(params.clone());
    let t = params.plain_modulus().value();
    let values: Vec<u64> = (0..4096u64).map(|v| v % t).collect();
    let raw = encoder.encode(&values).unwrap();
    let ct = enc.encrypt(&raw).unwrap();
    let ct2 = enc.encrypt(&raw).unwrap();
    let pt = eval.prepare_plaintext(&raw).unwrap();
    Ctx {
        eval,
        keys,
        ct,
        ct2,
        pt,
    }
}

fn ctx() -> Ctx {
    ctx_for(
        BfvParams::builder()
            .degree(4096)
            .plain_bits(17)
            .cipher_bits(60)
            .a_dcmp(1 << 20)
            .build()
            .unwrap(),
    )
}

/// Per-preset timings, using the in-place ops. `rotate_hoisted` is the
/// marginal cost of one extra rotation of an already-hoisted set —
/// permutations + key-switch multiply-accumulates, zero NTTs. Multi-limb
/// presets also time the leveled primitives: `mod_switch` (one dropped
/// limb, including the copy into the reusable output) and
/// `rotate_level1` (a rotation after one drop — fewer live planes, fewer
/// digits — the measurable payoff of leveled evaluation).
struct LimbPoint {
    limbs: usize,
    add: f64,
    mul: f64,
    /// Rotation with the backend pinned to scalar — comparable across the
    /// SIMD work.
    rotate: f64,
    /// The same rotation under the runtime-detected backend.
    rotate_simd: f64,
    rotate_hoisted: f64,
    /// `Some((mod_switch_ns, rotate_level1_ns))` for chains with a level
    /// to drop to.
    leveled: Option<(f64, f64)>,
}

fn per_limb_point(params: BfvParams) -> LimbPoint {
    let limbs = params.limbs();
    let c = ctx_for(params.clone());
    let mut work = c.ct.clone();
    let add = time_ns(|| {
        c.eval
            .add_assign(black_box(&mut work), black_box(&c.ct2))
            .unwrap();
    });
    let mut work = c.ct.clone();
    let mul = time_ns(|| {
        c.eval
            .mul_plain_assign(black_box(&mut work), &c.pt)
            .unwrap();
    });
    let mut scratch: Scratch = c.eval.new_scratch();
    let mut out = Ciphertext::transparent_zero(c.eval.params());
    let rotate = with_backend(Some(SimdBackend::Scalar), || {
        time_ns(|| {
            c.eval
                .rotate_rows_into(&mut out, black_box(&c.ct), 1, &c.keys, &mut scratch)
                .unwrap();
        })
    });
    let rotate_simd = time_ns(|| {
        c.eval
            .rotate_rows_into(&mut out, black_box(&c.ct), 1, &c.keys, &mut scratch)
            .unwrap();
    });
    let mut hoisted = HoistedDecomposition::empty(c.eval.params());
    c.eval
        .hoist_into(&mut hoisted, &c.ct, &mut scratch)
        .unwrap();
    let rotate_hoisted = time_ns(|| {
        c.eval
            .rotate_hoisted_into(
                &mut out,
                black_box(&c.ct),
                &hoisted,
                1,
                &c.keys,
                &mut scratch,
            )
            .unwrap();
    });
    let leveled = (params.max_level() >= 1).then(|| {
        let mut switched = Ciphertext::transparent_zero(c.eval.params());
        let mod_switch = time_ns(|| {
            c.eval
                .mod_switch_to_next_into(&mut switched, black_box(&c.ct))
                .unwrap();
        });
        let mut low_out = Ciphertext::transparent_zero_at(c.eval.params(), 1);
        let rotate_level1 = time_ns(|| {
            c.eval
                .rotate_rows_into(&mut low_out, black_box(&switched), 1, &c.keys, &mut scratch)
                .unwrap();
        });
        (mod_switch, rotate_level1)
    });
    LimbPoint {
        limbs,
        add,
        mul,
        rotate,
        rotate_simd,
        rotate_hoisted,
        leveled,
    }
}

/// FC-layer timings on one multi-limb preset: the BSGS reshape vs the
/// legacy diagonal path, on the same weights and keys, at level 0 and
/// after one modulus switch. Decryption is not on the timed path, so the
/// preset's default decomposition base is fine — only the rotation
/// structure is under test.
struct FcPoint {
    limbs: usize,
    diag: f64,
    bsgs: f64,
    diag_level1: f64,
    bsgs_level1: f64,
    /// Sparse BSGS on the same layer with half / 90% of the diagonal
    /// alias classes pruned whole — the rotations and mask multiplies the
    /// structure analyzer lets the plan skip.
    bsgs_sparse50: f64,
    bsgs_sparse90: f64,
    /// Power-of-two weights at 50% structured sparsity: the sparse plan's
    /// savings plus the factored `2^m` scale re-applied by one shift-add
    /// `mul_scalar`.
    pow2: f64,
}

/// Zeroes `dead` of the `g = gcd(no, ni)` diagonal alias classes of an FC
/// weight tensor (classes `1..=dead`; class 0 stays live), the structured
/// unit [`cheetah_core::sparse::FcStructure`] can skip whole.
fn prune_fc_classes(weights: &Tensor, no: usize, ni: usize, dead_frac: f64) -> Tensor {
    let g = {
        let (mut a, mut b) = (no, ni);
        while b != 0 {
            let r = a % b;
            a = b;
            b = r;
        }
        a
    };
    let dead = ((g as f64) * dead_frac) as usize;
    let mut out = weights.clone();
    let data = out.data_mut();
    for r in 0..no {
        for c in 0..ni {
            let class = ((c % g) + g - (r % g)) % g;
            if (1..=dead).contains(&class) {
                data[r * ni + c] = 0;
            }
        }
    }
    out
}

fn fc_point(params: BfvParams) -> FcPoint {
    let ni = if smoke() { 32 } else { 64 };
    let spec = FcSpec {
        name: "bench-fc".into(),
        ni,
        no: ni / 4,
    };
    let mut kg = KeyGenerator::from_seed(params.clone(), 21);
    let pk = kg.public_key().unwrap();
    let keys = kg
        .galois_keys_for_steps(&HomFc::required_steps(&spec))
        .unwrap();
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 22);
    let eval = Evaluator::new(params.clone());
    let weights = Tensor::from_data(
        &[spec.no, spec.ni],
        (0..spec.no * spec.ni).map(|i| (i % 5) as i64 - 2).collect(),
    );
    let input = Tensor::from_data(&[spec.ni], (0..spec.ni as i64).collect());
    let ct = enc
        .encrypt(&HomFc::encode_input(&spec, &input, &encoder).unwrap())
        .unwrap();
    let ct_level1 = eval.mod_switch_to(&ct, 1).unwrap();

    let bsgs = HomFc::new(&spec, &weights, &encoder, &eval, Schedule::PartialAligned).unwrap();
    assert!(
        bsgs.plan().is_some(),
        "d = {ni} must auto-select a BSGS plan"
    );
    let diag = HomFc::with_plan(
        &spec,
        &weights,
        &encoder,
        &eval,
        Schedule::PartialAligned,
        None,
    )
    .unwrap();
    let time_fc = |layer: &HomFc, input: &Ciphertext| {
        time_ns(|| {
            black_box(
                layer
                    .apply_threaded(black_box(input), &eval, &keys, 1)
                    .unwrap(),
            );
        })
    };

    // Sparse variants: the same layer with 50% / 90% of the diagonal
    // alias classes pruned whole, auto-selecting a SparseBsgsPlan.
    let sparse50 = HomFc::new(
        &spec,
        &prune_fc_classes(&weights, spec.no, spec.ni, 0.5),
        &encoder,
        &eval,
        Schedule::PartialAligned,
    )
    .unwrap();
    let sparse90 = HomFc::new(
        &spec,
        &prune_fc_classes(&weights, spec.no, spec.ni, 0.9),
        &encoder,
        &eval,
        Schedule::PartialAligned,
    )
    .unwrap();
    assert!(
        sparse90.sparse_plan().is_some(),
        "a 90%-pruned layer must take the sparse plan"
    );

    // Pow2 variant: every live weight ±2 or ±4 (shared factor 2 is pulled
    // out of the masks and re-applied by one shift-add mul_scalar), at
    // 50% structured sparsity.
    let pow2_weights = Tensor::from_data(
        &[spec.no, spec.ni],
        weights.data().iter().map(|&v| 2 * v).collect(),
    );
    let pow2 = HomFc::new(
        &spec,
        &prune_fc_classes(&pow2_weights, spec.no, spec.ni, 0.5),
        &encoder,
        &eval,
        Schedule::PartialAligned,
    )
    .unwrap();
    assert!(
        pow2.pow2_scale_log2() >= 1,
        "pow2 bench weights must factor a shared scale"
    );

    FcPoint {
        limbs: params.limbs(),
        diag: time_fc(&diag, &ct),
        bsgs: time_fc(&bsgs, &ct),
        diag_level1: time_fc(&diag, &ct_level1),
        bsgs_level1: time_fc(&bsgs, &ct_level1),
        bsgs_sparse50: time_fc(&sparse50, &ct),
        bsgs_sparse90: time_fc(&sparse90, &ct),
        pow2: time_fc(&pow2, &ct),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_he_ops.json".to_string());
    let c = ctx();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // --- HE operators: allocating wrappers vs the zero-alloc hot path ---
    let add_alloc = time_ns(|| {
        black_box(c.eval.add(black_box(&c.ct), black_box(&c.ct2)).unwrap());
    });
    let mut work = c.ct.clone();
    let add_assign = time_ns(|| {
        c.eval
            .add_assign(black_box(&mut work), black_box(&c.ct2))
            .unwrap();
    });

    let mul_alloc = time_ns(|| {
        black_box(c.eval.mul_plain(black_box(&c.ct), &c.pt).unwrap());
    });
    let mut work = c.ct.clone();
    let mul_assign = time_ns(|| {
        c.eval
            .mul_plain_assign(black_box(&mut work), &c.pt)
            .unwrap();
    });

    let rotate_alloc = time_ns(|| {
        black_box(c.eval.rotate_rows(black_box(&c.ct), 1, &c.keys).unwrap());
    });
    let mut scratch: Scratch = c.eval.new_scratch();
    let mut rot_out = Ciphertext::transparent_zero(c.eval.params());
    let rotate_into = time_ns(|| {
        c.eval
            .rotate_rows_into(&mut rot_out, black_box(&c.ct), 1, &c.keys, &mut scratch)
            .unwrap();
    });

    // --- Hoisted rotation: the one-time hoist and the per-step replay ---
    let mut hoisted = HoistedDecomposition::empty(c.eval.params());
    let hoist = time_ns(|| {
        c.eval
            .hoist_into(&mut hoisted, black_box(&c.ct), &mut scratch)
            .unwrap();
    });
    let rotate_hoisted = time_ns(|| {
        c.eval
            .rotate_hoisted_into(
                &mut rot_out,
                black_box(&c.ct),
                &hoisted,
                1,
                &c.keys,
                &mut scratch,
            )
            .unwrap();
    });

    // --- Single-table NTT: forced scalar vs runtime-detected backend ---
    // A 4096-point forward+inverse roundtrip on one 54-bit limb: the
    // narrowest pin of the vectorized butterfly kernels themselves, with
    // no key-switch machinery around them.
    let (ntt_scalar, ntt_simd) = {
        let q = cheetah_bfv::arith::Modulus::new(
            cheetah_bfv::arith::generate_ntt_prime(54, 4096).unwrap(),
        )
        .unwrap();
        let table = cheetah_bfv::ntt::NttTable::new(4096, q).unwrap();
        let mut buf: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % q.value())
            .collect();
        let scalar = with_backend(Some(SimdBackend::Scalar), || {
            time_ns(|| {
                table.forward(black_box(&mut buf));
                table.inverse(black_box(&mut buf));
            })
        });
        let vector = time_ns(|| {
            table.forward(black_box(&mut buf));
            table.inverse(black_box(&mut buf));
        });
        (scalar, vector)
    };

    // --- Modulus switching: one dropped limb on a 2-limb chain ---
    let mod_switch = {
        let c2 = ctx_for(BfvParams::preset_rns_2x30(4096).unwrap());
        let mut switched = Ciphertext::transparent_zero(c2.eval.params());
        time_ns(|| {
            c2.eval
                .mod_switch_to_next_into(&mut switched, black_box(&c2.ct))
                .unwrap();
        })
    };

    // --- Hybrid special-prime rotations vs their equal-plane digit twins ---
    // hybrid_1x54 (1 data limb + P = 2 planes) twins l2 (rns_2x30);
    // hybrid_2x36 (2 data limbs + P = 3 planes) twins l3 (rns_3x36).
    let hybrid_rotate = |params: BfvParams| -> (f64, f64) {
        let hc = ctx_for(params);
        let mut hs: Scratch = hc.eval.new_scratch();
        let mut hout = Ciphertext::transparent_zero(hc.eval.params());
        let rot = time_ns(|| {
            hc.eval
                .rotate_rows_into(&mut hout, black_box(&hc.ct), 1, &hc.keys, &mut hs)
                .unwrap();
        });
        let mut hd = HoistedDecomposition::empty(hc.eval.params());
        let hoist = time_ns(|| {
            hc.eval
                .hoist_into(&mut hd, black_box(&hc.ct), &mut hs)
                .unwrap();
        });
        (rot, hoist)
    };
    let (l2_rotate_hybrid, hoist_hybrid) =
        hybrid_rotate(BfvParams::preset_hybrid_1x54(4096).unwrap());
    let (l3_rotate_hybrid, _) = hybrid_rotate(BfvParams::preset_hybrid_2x36(4096).unwrap());

    // --- Per-limb-count RNS points: 1/2/3-limb chains at n = 4096 ---
    let limb_points: Vec<LimbPoint> = [
        BfvParams::preset_single_60(4096).unwrap(),
        BfvParams::preset_rns_2x30(4096).unwrap(),
        BfvParams::preset_rns_3x36(4096).unwrap(),
    ]
    .into_iter()
    .map(per_limb_point)
    .collect();

    // --- FC layers: BSGS vs diagonal on the multi-limb presets ---
    let fc_points: Vec<FcPoint> = [
        BfvParams::preset_rns_2x30(4096).unwrap(),
        BfvParams::preset_rns_3x36(4096).unwrap(),
    ]
    .into_iter()
    .map(fc_point)
    .collect();

    // --- Contiguous batched NTT, serial vs 4 threads ---
    let (ntt_n, ntt_batch, ntt_threads) = if smoke() {
        (2048usize, 8usize, 4usize)
    } else {
        (8192usize, 64usize, 4usize)
    };
    let q = cheetah_bfv::arith::Modulus::new(
        cheetah_bfv::arith::generate_ntt_prime(50, ntt_n).unwrap(),
    )
    .unwrap();
    let table = cheetah_bfv::ntt::NttTable::new(ntt_n, q).unwrap();
    let base = PolyBatch::from_fn(ntt_batch, ntt_n, Representation::Coeff, |i, j| {
        ((i * ntt_n + j) as u64).wrapping_mul(0x9e37_79b9) % q.value()
    });
    let mut best_serial = f64::INFINITY;
    let mut best_parallel = f64::INFINITY;
    for _ in 0..3 {
        let mut b = base.clone();
        let start = Instant::now();
        batched_forward(&table, &mut b, 1);
        best_serial = best_serial.min(start.elapsed().as_nanos() as f64);
        let mut b = base.clone();
        let start = Instant::now();
        batched_forward(&table, &mut b, ntt_threads);
        best_parallel = best_parallel.min(start.elapsed().as_nanos() as f64);
    }
    let ntt_speedup = best_serial / best_parallel;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"degree\": 4096,");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"ops_ns\": {{");
    let _ = writeln!(json, "    \"add\": {add_alloc:.1},");
    let _ = writeln!(json, "    \"add_assign\": {add_assign:.1},");
    let _ = writeln!(json, "    \"mul_plain\": {mul_alloc:.1},");
    let _ = writeln!(json, "    \"mul_plain_assign\": {mul_assign:.1},");
    let _ = writeln!(json, "    \"rotate\": {rotate_alloc:.1},");
    let _ = writeln!(json, "    \"rotate_into\": {rotate_into:.1},");
    let _ = writeln!(json, "    \"hoist\": {hoist:.1},");
    let _ = writeln!(json, "    \"hoist_hybrid\": {hoist_hybrid:.1},");
    let _ = writeln!(json, "    \"rotate_hoisted\": {rotate_hoisted:.1},");
    let _ = writeln!(json, "    \"mod_switch\": {mod_switch:.1},");
    let _ = writeln!(json, "    \"ntt\": {ntt_scalar:.1},");
    let _ = writeln!(json, "    \"ntt_simd\": {ntt_simd:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"per_limb_ns\": {{");
    for p in &limb_points {
        let limbs = p.limbs;
        let trail = ",";
        let _ = writeln!(json, "    \"l{limbs}_add\": {:.1},", p.add);
        let _ = writeln!(json, "    \"l{limbs}_mul\": {:.1},", p.mul);
        let _ = writeln!(json, "    \"l{limbs}_rotate\": {:.1},", p.rotate);
        let _ = writeln!(json, "    \"l{limbs}_rotate_simd\": {:.1},", p.rotate_simd);
        match p.leveled {
            Some((ms, r1)) => {
                let _ = writeln!(
                    json,
                    "    \"l{limbs}_rotate_hoisted\": {:.1},",
                    p.rotate_hoisted
                );
                let _ = writeln!(json, "    \"l{limbs}_mod_switch\": {ms:.1},");
                let _ = writeln!(json, "    \"l{limbs}_rotate_level1\": {r1:.1}{trail}");
            }
            None => {
                let _ = writeln!(
                    json,
                    "    \"l{limbs}_rotate_hoisted\": {:.1}{trail}",
                    p.rotate_hoisted
                );
            }
        }
    }
    let _ = writeln!(json, "    \"l2_rotate_hybrid\": {l2_rotate_hybrid:.1},");
    let _ = writeln!(json, "    \"l3_rotate_hybrid\": {l3_rotate_hybrid:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fc_layer_ns\": {{");
    for (idx, p) in fc_points.iter().enumerate() {
        let limbs = p.limbs;
        let trail = if idx + 1 < fc_points.len() { "," } else { "" };
        let _ = writeln!(json, "    \"l{limbs}_fc_diag\": {:.1},", p.diag);
        let _ = writeln!(json, "    \"l{limbs}_fc_bsgs\": {:.1},", p.bsgs);
        let _ = writeln!(
            json,
            "    \"l{limbs}_fc_diag_level1\": {:.1},",
            p.diag_level1
        );
        let _ = writeln!(
            json,
            "    \"l{limbs}_fc_bsgs_level1\": {:.1},",
            p.bsgs_level1
        );
        let _ = writeln!(
            json,
            "    \"l{limbs}_fc_bsgs_sparse50\": {:.1},",
            p.bsgs_sparse50
        );
        let _ = writeln!(
            json,
            "    \"l{limbs}_fc_bsgs_sparse90\": {:.1},",
            p.bsgs_sparse90
        );
        let _ = writeln!(json, "    \"l{limbs}_fc_pow2\": {:.1}{trail}", p.pow2);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"batched_ntt\": {{");
    let _ = writeln!(json, "    \"n\": {ntt_n},");
    let _ = writeln!(json, "    \"batch\": {ntt_batch},");
    let _ = writeln!(json, "    \"threads\": {ntt_threads},");
    let _ = writeln!(json, "    \"serial_ns\": {best_serial:.0},");
    let _ = writeln!(json, "    \"parallel_ns\": {best_parallel:.0},");
    let _ = writeln!(json, "    \"speedup\": {ntt_speedup:.3}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_he_ops.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
