//! Figure 7: (a) kernel time breakdown of HE inference; (b) the limit
//! study deriving per-kernel speedups needed for plaintext latency.
//!
//! Paper reference (ResNet50 on a Xeon E5-2667, 970 s total): NTT 55.2 %,
//! Rotate 31.8 %, Mult 10.3 %, Add 2.2 %, Other 0.5 %; speedups needed:
//! NTT 16384×, Rotate 8192×, Mult 4096×, Add 4096×. Pass `--model lenet5`
//! (default `resnet50`) to profile a different network.

use cheetah_bench::{heading, tune_model};
use cheetah_core::{Schedule, TuneSpace};
use cheetah_nn::models;
use cheetah_profile::limit::limit_study;
use cheetah_profile::{network_breakdown, KernelTimer};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = args
        .iter()
        .position(|a| a == "--model")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("resnet50");
    let net = match model {
        "lenet5" => models::lenet5(),
        "lenet300" => models::lenet300(),
        "alexnet" => models::alexnet(),
        "vgg16" => models::vgg16(),
        _ => models::resnet50(),
    };

    heading(&format!(
        "Figure 7a — kernel time breakdown ({} under HE-PTune + Sched-PA)",
        net.name
    ));
    let tuned = tune_model(&net, Schedule::PartialAligned, &TuneSpace::default());
    let mut timer = KernelTimer::new(10);
    let b = network_breakdown(&tuned, &mut timer);
    let shares = b.shares();
    println!(
        "modeled full-inference time on this host: {:.1} s (paper: 970 s on a Xeon E5-2667 for ResNet50)",
        b.total_s()
    );
    println!(
        "{:<8} {:>10} {:>8}   (paper, ResNet50)",
        "kernel", "seconds", "share"
    );
    for (name, secs, share, paper) in [
        ("NTT", b.ntt_s, shares[0], "55.2%"),
        ("Rotate", b.rotate_s, shares[1], "31.8%"),
        ("Mult", b.mult_s, shares[2], "10.3%"),
        ("Add", b.add_s, shares[3], "2.2%"),
        ("Other", b.other_s, shares[4], "0.5%"),
    ] {
        println!("{name:<8} {secs:>10.2} {share:>7.1}%   ({paper})");
    }

    heading("Figure 7b — speedup needed per kernel for 100 ms plaintext latency");
    let study = limit_study(&b, 0.1);
    println!(
        "{:<8} {:>10}   (paper: NTT 16384x, Rotate 8192x, Mult 4096x, Add 4096x)",
        "kernel", "factor"
    );
    for (kernel, factor) in study.factors {
        println!("{:<8} {:>9}x", kernel.name(), factor);
    }
    println!(
        "final latency {:.1} ms (target {:.0} ms); {} doubling steps",
        study.final_latency_s * 1e3,
        study.target_s * 1e3,
        study.trajectory.len()
    );
    println!("\ntrajectory (kernel doubled -> total latency):");
    for (kernel, factor, latency) in study.trajectory.iter().step_by(4) {
        println!(
            "  {:<8} -> {:>7}x   total {:>10.3} s",
            kernel.name(),
            factor,
            latency
        );
    }
}
