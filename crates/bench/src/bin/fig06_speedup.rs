//! Figure 6: per-benchmark speedup of HE-PTune and HE-PTune + Sched-PA
//! over the Gazelle baseline, for the five paper models.
//!
//! Paper reference points (§V-C): HE-PTune alone 2.98× harmonic mean
//! (5.25× ignoring MNIST); Sched-PA adds 5.20× (6.11×); combined 13.5×
//! harmonic mean, 79.6× max (30.3× mean without MNIST).

use cheetah_bench::{fmt_mults, heading};
use cheetah_core::speedup::{evaluate_model, harmonic_mean};
use cheetah_core::{QuantSpec, TuneSpace};
use cheetah_nn::models;

fn main() {
    let quant = QuantSpec::default();
    let space = TuneSpace::default();

    heading("Figure 6 — speedup over Gazelle (per model)");
    println!(
        "{:<16} {:>12} {:>12} {:>12} | {:>9} {:>12}",
        "model", "Gazelle", "HE-PTune", "PTune+PA", "PTune x", "PTune+PA x"
    );

    let mut ptune_speedups = Vec::new();
    let mut combined_speedups = Vec::new();
    let mut imagenet_ptune = Vec::new();
    let mut imagenet_combined = Vec::new();

    for net in models::paper_benchmarks() {
        let s = evaluate_model(&net, &quant, &space);
        let sp = s.speedup_ptune();
        let sc = s.speedup_combined();
        println!(
            "{:<16} {:>12} {:>12} {:>12} | {:>8.2}x {:>11.2}x",
            s.model,
            fmt_mults(s.gazelle_cost()),
            fmt_mults(s.ptune_cost()),
            fmt_mults(s.ptune_pa_cost()),
            sp,
            sc,
        );
        ptune_speedups.push(sp);
        combined_speedups.push(sc);
        if !net.name.starts_with("LeNet") {
            imagenet_ptune.push(sp);
            imagenet_combined.push(sc);
        }
    }

    heading("Summary (paper: PTune 2.98x h-mean, combined 13.5x h-mean, 79.6x max)");
    println!(
        "HE-PTune      h-mean {:>7.2}x   (ignoring MNIST {:>7.2}x; paper 2.98x / 5.25x)",
        harmonic_mean(&ptune_speedups),
        harmonic_mean(&imagenet_ptune),
    );
    println!(
        "PTune+SchedPA h-mean {:>7.2}x   (ignoring MNIST {:>7.2}x; paper 13.5x / 30.3x)",
        harmonic_mean(&combined_speedups),
        harmonic_mean(&imagenet_combined),
    );
    println!(
        "max combined speedup {:>7.2}x   (paper 79.6x)",
        combined_speedups.iter().fold(0.0f64, |a, &b| a.max(b)),
    );
    let sched_only: Vec<f64> = combined_speedups
        .iter()
        .zip(&ptune_speedups)
        .map(|(c, p)| c / p)
        .collect();
    println!(
        "Sched-PA incremental  h-mean {:>5.2}x, max {:>5.2}x (paper 5.20x mean, 10.2x max)",
        harmonic_mean(&sched_only),
        sched_only.iter().fold(0.0f64, |a, &b| a.max(b)),
    );
}
