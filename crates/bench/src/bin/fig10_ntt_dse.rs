//! Figure 10: design-space exploration for the NTT kernel, with the
//! power-latency Pareto frontier highlighted.

use cheetah_accel::dse::{power_latency_pareto, sweep_kernel, KernelSweep};
use cheetah_accel::kernels::KernelKind;
use cheetah_bench::heading;

fn main() {
    let n = 4096;
    let sweep = KernelSweep::default();
    let points = sweep_kernel(KernelKind::Ntt, n, &sweep);
    let frontier = power_latency_pareto(&points);

    heading(&format!(
        "Figure 10 — NTT kernel DSE at n = {n} (40 nm, 400 MHz): {} points, {} on the Pareto frontier",
        points.len(),
        frontier.len()
    ));
    println!(
        "{:>7} {:>4} {:>12} {:>10} {:>10} {:>10} {:>10}  pareto",
        "unroll", "II", "latency(us)", "power(W)", "area(mm2)", "sram(mm2)", "bw(GB/s)"
    );
    for p in &points {
        let on_frontier = frontier
            .iter()
            .any(|f| f.design.unroll == p.design.unroll && f.design.ii == p.design.ii);
        println!(
            "{:>7} {:>4} {:>12.2} {:>10.3} {:>10.3} {:>10.3} {:>10.1}  {}",
            p.design.unroll,
            p.design.ii,
            p.cost.latency_s * 1e6,
            p.cost.power_w,
            p.cost.area_mm2(),
            p.cost.sram_area_mm2,
            p.cost.sram_bw_gbps,
            if on_frontier { "*" } else { "" }
        );
    }

    heading("Pareto frontier (latency ascending)");
    for p in &frontier {
        println!(
            "u={:<5} II={} -> {:>9.2} us, {:>7.3} W, {:>7.3} mm2",
            p.design.unroll,
            p.design.ii,
            p.cost.latency_s * 1e6,
            p.cost.power_w,
            p.cost.area_mm2()
        );
    }
    let energy_opt = cheetah_accel::dse::energy_optimal(&points).expect("non-empty");
    println!(
        "\nenergy-optimal frontier point: u={} II={} ({:.2} uJ/transform) — the lane building block",
        energy_opt.design.unroll,
        energy_opt.design.ii,
        energy_opt.cost.energy_j * 1e6
    );
}
