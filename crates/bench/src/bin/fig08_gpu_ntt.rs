//! Figure 8: NTT GPU speedup over CPU, by batch size and transform size.
//!
//! Paper reference: cuHE on a GTX 1080-Ti saturates near 120× at batch
//! 512/1024 (70 % warp occupancy, 85 % warp execution efficiency).
//! Two reproductions: the SIMT analytical model (no GPU exists here) and a
//! real multi-threaded batched NTT on host cores (`--measure` to run it).

use cheetah_bench::heading;
use cheetah_gpu::batched::measure_batched;
use cheetah_gpu::simt::{figure8_sweep, CpuSpec, GpuSpec};

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");
    let verbose = std::env::args().any(|a| a == "--verbose");

    heading("Figure 8 — modeled GPU (1080-Ti) batched-NTT speedup over CPU");
    let sweep = figure8_sweep(&GpuSpec::default(), &CpuSpec::default());
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "batch", "n=16K", "n=32K", "n=64K"
    );
    let mut batch = 1usize;
    while batch <= 1024 {
        let row: Vec<f64> = [16384usize, 32768, 65536]
            .iter()
            .map(|&n| {
                sweep
                    .iter()
                    .find(|p| p.n == n && p.batch == batch)
                    .map(|p| p.speedup)
                    .unwrap_or(0.0)
            })
            .collect();
        println!(
            "{:>8} {:>9.1}x {:>9.1}x {:>9.1}x",
            batch, row[0], row[1], row[2]
        );
        batch *= 2;
    }
    let sat = sweep
        .iter()
        .find(|p| p.n == 16384 && p.batch == 512)
        .expect("sweep point");
    println!(
        "\nsaturation at batch 512 (n=16K): {:.0}x, occupancy {:.0}% (paper: ~120x, 70%)",
        sat.speedup,
        sat.occupancy * 100.0
    );

    if verbose {
        heading("Model internals at batch 512");
        println!(
            "gpu latency {:.3} ms, cpu latency {:.1} ms",
            sat.gpu_s * 1e3,
            sat.cpu_s * 1e3
        );
    }

    if measure {
        heading("Measured multi-threaded batched NTT (host-core substitute)");
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        println!("host has {cores} cores; saturation is expected near that count");
        println!(
            "{:>8} {:>12} {:>12} {:>9}",
            "batch", "seq (ms)", "par (ms)", "speedup"
        );
        for batch in [1usize, 4, 16, 64, 256] {
            let p = measure_batched(16384, batch, cores, 7);
            println!(
                "{:>8} {:>12.2} {:>12.2} {:>8.2}x",
                batch,
                p.sequential_s * 1e3,
                p.parallel_s * 1e3,
                p.speedup
            );
        }
    } else {
        println!("\n(pass --measure to also run the real threaded-NTT measurement)");
    }
}
