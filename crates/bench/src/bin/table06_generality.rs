//! Table VI: accelerator generality — VGG16 and AlexNet running on the
//! accelerator tuned for ResNet50 (the paper's "PT-ResNet50" design),
//! versus their own ideal designs.
//!
//! Paper reference: ResNet50 100 ms (8 PE × 512 lanes), VGG16 215 ms
//! (+59 % vs its 16×256 ideal), AlexNet 77 ms (+28 % vs its 16×128 ideal).

use cheetah_accel::generality::generality_study;
use cheetah_accel::workload::NetworkWork;
use cheetah_accel::{ArchSweep, NODE_5NM};
use cheetah_bench::{heading, tune_model};
use cheetah_core::{Schedule, TuneSpace};
use cheetah_nn::models;

fn main() {
    let space = TuneSpace::default();
    let make = |net: cheetah_nn::Network| {
        let tuned = tune_model(&net, Schedule::PartialAligned, &space);
        NetworkWork::from_tuned(&net.name, &tuned)
    };
    let resnet = make(models::resnet50());
    let vgg = make(models::vgg16());
    let alex = make(models::alexnet());

    let study = generality_study(&resnet, &[vgg, alex], &ArchSweep::default(), NODE_5NM, 0.1);

    heading("Table VI — performance on the PT-ResNet50 accelerator");
    println!(
        "shared design: {} PEs x {} lanes (paper: 8 x 512)\n",
        study.shared.0, study.shared.1
    );
    println!(
        "{:<10} {:>10} {:>10} {:>11} {:>11} {:>8}",
        "Model", "Lat(ms)", "Increase", "ideal P-L", "OutCT", "Prt u"
    );
    for row in &study.rows {
        println!(
            "{:<10} {:>10.1} {:>9.0}% {:>6}-{:<5} {:>11.2}K {:>8.1}",
            row.model,
            row.latency_ms,
            row.increase_pct,
            row.ideal_pes_lanes.0,
            row.ideal_pes_lanes.1,
            row.out_ct_thousands,
            row.partials_mean
        );
    }
    println!(
        "\npaper: ResNet50 100ms/0% (8-512), VGG16 215ms/+59% (16-256), AlexNet 77ms/+28% (16-128)"
    );
    println!("paper workload stats (Gazelle-era packing): OutCT 147K/422K/475K, Prt 50.5/595/337");
}
