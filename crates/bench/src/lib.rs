//! # cheetah-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run -p cheetah-bench --bin <name> --release`):
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig03_ptune_dse` | Fig. 3 — AlexNet HE-parameter DSE scatter + per-layer speedups |
//! | `fig06_speedup` | Fig. 6 — per-model speedups of HE-PTune and Sched-PA over Gazelle |
//! | `fig07_profile` | Fig. 7 — kernel time breakdown + speedup-needed limit study |
//! | `fig08_gpu_ntt` | Fig. 8 — GPU batched-NTT speedup curves |
//! | `fig10_ntt_dse` | Fig. 10 — NTT kernel power-latency Pareto frontier |
//! | `fig11_accel_dse` | Fig. 11 — ResNet50 accelerator DSE + breakdowns |
//! | `table06_generality` | Table VI — AlexNet/VGG16 on the ResNet50 design |
//!
//! Criterion microbenches (`cargo bench -p cheetah-bench`) cover the hot
//! kernels: Barrett vs `u128 %` reduction (ablation), NTT across degrees,
//! the three HE operators, and full homomorphic layers under both
//! schedules.

use cheetah_core::ptune::{tune_network, DesignPoint, NoiseRegime, TuneSpace};
use cheetah_core::{QuantSpec, Schedule};
use cheetah_nn::{LinearLayer, Network};

/// Tunes every linear layer of a network (the standard pipeline used by
/// several figure binaries).
///
/// # Panics
///
/// Panics when the space has no feasible configuration for some layer —
/// the figure binaries run the paper's benchmarks, for which the default
/// space always does.
pub fn tune_model(
    net: &Network,
    schedule: Schedule,
    space: &TuneSpace,
) -> Vec<(LinearLayer, DesignPoint)> {
    let quant = QuantSpec::default();
    let layers = net.linear_layers();
    let t_bits: Vec<u32> = layers
        .iter()
        .map(|l| quant.statistical_plain_bits(l))
        .collect();
    tune_network(&layers, &t_bits, schedule, NoiseRegime::Statistical, space)
        .unwrap_or_else(|e| panic!("{}: {e}", net.name))
}

/// Prints a horizontal rule and a section heading.
pub fn heading(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Formats a number of integer multiplications in engineering notation.
pub fn fmt_mults(m: f64) -> String {
    if m >= 1e12 {
        format!("{:.2}T", m / 1e12)
    } else if m >= 1e9 {
        format!("{:.2}G", m / 1e9)
    } else if m >= 1e6 {
        format!("{:.2}M", m / 1e6)
    } else {
        format!("{:.0}", m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_mults_ranges() {
        assert_eq!(fmt_mults(5.0e12), "5.00T");
        assert_eq!(fmt_mults(5.0e9), "5.00G");
        assert_eq!(fmt_mults(5.0e6), "5.00M");
        assert_eq!(fmt_mults(512.0), "512");
    }

    #[test]
    fn tune_model_runs_on_lenet300() {
        let tuned = tune_model(
            &cheetah_nn::models::lenet300(),
            Schedule::PartialAligned,
            &TuneSpace::default(),
        );
        assert_eq!(tuned.len(), 3);
    }
}
