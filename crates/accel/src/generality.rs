//! Accelerator generality study (§VIII-B4, Table VI): run AlexNet and
//! VGG16 on the accelerator sized for ResNet50 and quantify the slowdown
//! relative to each model's own ideal design.

use crate::arch::AcceleratorConfig;
use crate::explore::{explore, ArchSweep};
use crate::sim::Simulator;
use crate::tech::TechNode;
use crate::workload::NetworkWork;

/// One row of Table VI.
#[derive(Debug, Clone)]
pub struct GeneralityRow {
    /// Model name.
    pub model: String,
    /// Latency on the shared (ResNet50-tuned) design, ms.
    pub latency_ms: f64,
    /// Latency increase vs the model's own ideal design, percent.
    pub increase_pct: f64,
    /// The model's ideal `PEs-Lanes` from its own DSE.
    pub ideal_pes_lanes: (u32, u32),
    /// Total output ciphertexts (thousands) — "Out CT µ (K)".
    pub out_ct_thousands: f64,
    /// Mean partials per output ciphertext — "Prt µ".
    pub partials_mean: f64,
}

/// The full Table VI: the shared design plus one row per model.
#[derive(Debug, Clone)]
pub struct GeneralityStudy {
    /// The shared configuration (ResNet50's target design).
    pub shared: (u32, u32),
    /// Rows, reference model first.
    pub rows: Vec<GeneralityRow>,
}

/// Runs the study.
///
/// `reference` is the workload the shared accelerator is tuned for
/// (ResNet50 in the paper); `others` run on that design. `target_s` is the
/// reference latency target used to pick the shared design (100 ms).
pub fn generality_study(
    reference: &NetworkWork,
    others: &[NetworkWork],
    sweep: &ArchSweep,
    node: TechNode,
    target_s: f64,
) -> GeneralityStudy {
    let ref_outcome = explore(reference, sweep, node);
    let shared_design = ref_outcome
        .design_for_target(target_s)
        .or_else(|| ref_outcome.fastest())
        .expect("reference DSE produced no designs");
    let shared = (shared_design.pes, shared_design.lanes_per_pe);

    let mut rows = vec![GeneralityRow {
        model: reference.model.clone(),
        latency_ms: shared_design.latency_s * 1e3,
        increase_pct: 0.0,
        ideal_pes_lanes: shared,
        out_ct_thousands: reference.total_out_cts() as f64 / 1e3,
        partials_mean: reference.mean_partials_per_out_ct(),
    }];

    for other in others {
        let on_shared =
            Simulator::new(AcceleratorConfig::new(shared.0, shared.1)).simulate(other, node);
        // The model's own ideal design at the same resource class: the
        // minimum-latency frontier design using no more power than the
        // model actually draws on the shared accelerator. Since the shared
        // configuration itself is in the sweep, the ideal can only be
        // faster — the increase is the multiplexing/dimension-mismatch
        // penalty of §VIII-B4.
        let own = explore(other, sweep, node);
        let ideal = own
            .frontier
            .iter()
            .filter(|r| r.power_w <= on_shared.power_w * 1.001)
            .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
            .or_else(|| own.fastest())
            .expect("own DSE produced no designs");
        let increase_pct = (on_shared.latency_s / ideal.latency_s - 1.0) * 100.0;
        rows.push(GeneralityRow {
            model: other.model.clone(),
            latency_ms: on_shared.latency_s * 1e3,
            increase_pct,
            ideal_pes_lanes: (ideal.pes, ideal.lanes_per_pe),
            out_ct_thousands: other.total_out_cts() as f64 / 1e3,
            partials_mean: other.mean_partials_per_out_ct(),
        });
    }
    GeneralityStudy { shared, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::NODE_5NM;
    use cheetah_core::ptune::{tune_network, NoiseRegime, TuneSpace};
    use cheetah_core::{QuantSpec, Schedule};
    use cheetah_nn::models;

    fn work(net: cheetah_nn::Network) -> NetworkWork {
        let quant = QuantSpec::default();
        let layers = net.linear_layers();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let tuned = tune_network(
            &layers,
            &t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        )
        .unwrap();
        NetworkWork::from_tuned(&net.name, &tuned)
    }

    #[test]
    fn foreign_models_pay_a_penalty() {
        // Table VI's qualitative claim: models running on another model's
        // accelerator are no faster than on their own ideal design.
        let reference = work(models::lenet5());
        let other = work(models::lenet300());
        let study = generality_study(
            &reference,
            &[other],
            &ArchSweep::small(),
            NODE_5NM,
            f64::INFINITY,
        );
        assert_eq!(study.rows.len(), 2);
        assert_eq!(study.rows[0].increase_pct, 0.0);
        assert!(
            study.rows[1].increase_pct >= -1e-6,
            "penalty {:.1}% must be non-negative",
            study.rows[1].increase_pct
        );
        assert!(study.rows[1].latency_ms > 0.0);
    }
}
