//! Pareto-frontier extraction for two-objective minimization.

/// Returns the indices of the Pareto-optimal points under simultaneous
/// minimization of both objectives, sorted by the first objective.
///
/// A point is dominated if another point is no worse in both objectives
/// and strictly better in at least one.
pub fn pareto_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    let mut frontier = Vec::new();
    let mut best_y = f64::INFINITY;
    for idx in order {
        let y = points[idx].1;
        if y < best_y {
            frontier.push(idx);
            best_y = y;
        }
    }
    frontier
}

/// Extracts the Pareto-optimal subset of `items`, with objectives computed
/// by `key` (both minimized), sorted by the first objective.
pub fn pareto_front<T: Clone>(items: &[T], key: impl Fn(&T) -> (f64, f64)) -> Vec<T> {
    let points: Vec<(f64, f64)> = items.iter().map(&key).collect();
    pareto_indices(&points)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_lower_left_staircase() {
        let pts = vec![
            (1.0, 10.0), // frontier
            (2.0, 5.0),  // frontier
            (3.0, 6.0),  // dominated by (2,5)
            (4.0, 1.0),  // frontier
            (5.0, 1.0),  // dominated (same y, worse x)
        ];
        let idx = pareto_indices(&pts);
        assert_eq!(idx, vec![0, 1, 3]);
    }

    #[test]
    fn single_point_is_frontier() {
        assert_eq!(pareto_indices(&[(3.0, 3.0)]), vec![0]);
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn ties_on_x_keep_best_y() {
        let pts = vec![(1.0, 5.0), (1.0, 3.0), (2.0, 4.0)];
        let idx = pareto_indices(&pts);
        assert_eq!(idx, vec![1]);
    }

    #[test]
    fn pareto_front_preserves_items() {
        let items = vec![(10u32, 1.0f64, 2.0f64), (20, 2.0, 1.0), (30, 3.0, 3.0)];
        let front = pareto_front(&items, |it| (it.1, it.2));
        let ids: Vec<u32> = front.iter().map(|it| it.0).collect();
        assert_eq!(ids, vec![10, 20]);
    }
}
