//! The accelerator simulator (§VIII-A): maps a network workload onto an
//! [`AcceleratorConfig`], time-multiplexing output ciphertexts over PEs and
//! partials over lanes, and derives latency, energy, average power, area
//! and utilization from activity factors — the paper's methodology.

use std::collections::HashMap;

use crate::arch::{AcceleratorConfig, LaneModel, PeSram};
use crate::tech::TechNode;
use crate::workload::{LayerWork, NetworkWork};

/// Streaming-interface bandwidth (PCIe-like, GB/s) — §VII-A1.
pub const STREAM_BW_GBPS: f64 = 16.0;

/// Per-layer simulation record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSim {
    /// Layer name.
    pub name: String,
    /// Layer latency, seconds.
    pub latency_s: f64,
    /// Layer energy, joules @40 nm.
    pub energy_j: f64,
    /// Lane utilization (0..=1).
    pub lane_utilization: f64,
    /// Streaming-I/O utilization (0..=1).
    pub io_utilization: f64,
    /// Absolute streaming-I/O time for the layer, seconds.
    pub io_s: f64,
}

/// Time attribution across the lane stages (Fig. 11b).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// NTT + INTT stage time fraction.
    pub transforms: f64,
    /// SIMDmult time fraction (input + key-switch multiplies).
    pub mult: f64,
    /// Swap/Decompose/Compose fraction.
    pub rotate_other: f64,
    /// Reduction (SIMDadd) fraction.
    pub reduction: f64,
}

/// Area attribution (Fig. 11c).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AreaBreakdown {
    /// NTT/INTT staging + twiddle SRAM inside lanes, mm².
    pub lane_sram_mm2: f64,
    /// NTT/INTT butterfly datapath, mm².
    pub ntt_compute_mm2: f64,
    /// PE-level SRAM (input/weight/output buffers), mm².
    pub pe_sram_mm2: f64,
    /// Everything else (SIMD units, reduction network, IO buffer), mm².
    pub other_compute_mm2: f64,
}

impl AreaBreakdown {
    /// Total area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.lane_sram_mm2 + self.ntt_compute_mm2 + self.pe_sram_mm2 + self.other_compute_mm2
    }
}

/// Full simulation result for one configuration and workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// PEs in the configuration.
    pub pes: u32,
    /// Lanes per PE.
    pub lanes_per_pe: u32,
    /// End-to-end server-side HE latency, seconds.
    pub latency_s: f64,
    /// Total energy, joules (at the reporting node).
    pub energy_j: f64,
    /// Average power, watts (at the reporting node).
    pub power_w: f64,
    /// Total area, mm² (at the reporting node).
    pub area_mm2: f64,
    /// Area attribution (at the reporting node).
    pub area: AreaBreakdown,
    /// Runtime attribution.
    pub time: TimeBreakdown,
    /// Per-layer records.
    pub layers: Vec<LayerSim>,
    /// Mean lane utilization.
    pub mean_lane_utilization: f64,
    /// Peak streaming-I/O utilization.
    pub peak_io_utilization: f64,
    /// Network-level I/O utilization (total transfer time over total
    /// latency, transfers overlapped with compute).
    pub network_io_utilization: f64,
}

/// The simulator: caches lane models per polynomial degree.
#[derive(Debug)]
pub struct Simulator {
    config: AcceleratorConfig,
    lane_cache: HashMap<(usize, u32), LaneModel>,
}

impl Simulator {
    /// Creates a simulator for a configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self {
            config,
            lane_cache: HashMap::new(),
        }
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    fn lane(&mut self, n: usize) -> &LaneModel {
        let key = (n, self.config.ntt_units_per_lane);
        let (ntt_units, sweep) = (self.config.ntt_units_per_lane, self.config.sweep.clone());
        self.lane_cache
            .entry(key)
            .or_insert_with(|| LaneModel::build(n, ntt_units, &sweep))
    }

    /// Simulates one layer.
    fn simulate_layer(&mut self, work: &LayerWork) -> (LayerSim, TimeBreakdown, f64) {
        let pes = self.config.pes as u64;
        let lanes = self.config.lanes_per_pe as u64;
        let lane = self.lane(work.n).clone();
        let timing = lane.timing(work.l_ct);
        let interval = timing.bottleneck_s();

        // Output-stationary mapping: each PE owns one output CT at a time;
        // its lanes chew through that CT's partials. Output CTs stream
        // back-to-back through the lane pipeline (the output SRAM is
        // double-buffered), so the pipeline fill is paid once per layer,
        // not once per output ciphertext.
        let partials = work.partials_per_out_ct.ceil() as u64;
        let waves_per_out_ct = partials.div_ceil(lanes);
        let reduction_s = (lanes as f64).log2().ceil().max(1.0) * lane.add_latency_s();
        let pe_rounds = work.out_cts.div_ceil(pes);
        let latency_s =
            timing.fill_s() + (pe_rounds * waves_per_out_ct) as f64 * interval + reduction_s;

        // Energy: real work only (activity factors), plus reduction adds.
        let total_partials = work.total_partials();
        let adds = total_partials; // one reduction add per partial
        let energy_j =
            total_partials * lane.energy_per_partial_j(work.l_ct) + adds * lane.add_energy_j();

        // Utilizations.
        let busy = total_partials * interval;
        let capacity = (pes * lanes) as f64 * latency_s;
        let lane_utilization = (busy / capacity).min(1.0);
        // Streaming traffic: input + output ciphertexts (2 polynomials of
        // n 8-byte words each) plus raw quantized weights — the
        // evaluation-domain weight plaintexts are expanded on-chip, not
        // streamed at n words each. Transfers overlap with compute across
        // the inference, so utilization is meaningful at network level.
        let ct_bytes = 2.0 * work.out_cts as f64 * 2.0 * work.n as f64 * 8.0;
        let io_s = (ct_bytes + work.weight_bytes) / (STREAM_BW_GBPS * 1e9);
        let io_utilization = (io_s / latency_s).min(1.0);

        // Time attribution within the lane pipeline (by stage weight).
        let stage_total = timing.fill_s() + reduction_s;
        let tb = TimeBreakdown {
            transforms: (timing.ntt_s + timing.intt_s) / stage_total,
            mult: (timing.mult_s + timing.ksk_mult_s) / stage_total,
            rotate_other: timing.rotate_other_s / stage_total,
            reduction: reduction_s / stage_total,
        };
        (
            LayerSim {
                name: work.name.clone(),
                latency_s,
                energy_j,
                lane_utilization,
                io_utilization,
                io_s,
            },
            tb,
            latency_s,
        )
    }

    /// Simulates a full network, reporting at the given technology node.
    pub fn simulate(&mut self, work: &NetworkWork, node: TechNode) -> SimResult {
        let mut layers = Vec::with_capacity(work.layers.len());
        let mut total_latency = 0.0;
        let mut total_energy_40 = 0.0;
        let mut tb_acc = TimeBreakdown::default();
        for lw in &work.layers {
            let (sim, tb, lat) = self.simulate_layer(lw);
            total_latency += lat;
            total_energy_40 += sim.energy_j;
            // latency-weighted stage attribution
            tb_acc.transforms += tb.transforms * lat;
            tb_acc.mult += tb.mult * lat;
            tb_acc.rotate_other += tb.rotate_other * lat;
            tb_acc.reduction += tb.reduction * lat;
            layers.push(sim);
        }
        let t = total_latency.max(f64::MIN_POSITIVE);
        let time = TimeBreakdown {
            transforms: tb_acc.transforms / t,
            mult: tb_acc.mult / t,
            rotate_other: tb_acc.rotate_other / t,
            reduction: tb_acc.reduction / t,
        };

        // Area: lanes sized for the largest degree used.
        let max_n = work.layers.iter().map(|l| l.n).max().unwrap_or(4096);
        let max_in_cts = work
            .layers
            .iter()
            .map(|l| {
                // input working set: roughly out_cts * partials scaled by n
                (l.total_partials() / l.partials_per_out_ct.max(1.0)).ceil() as u64
            })
            .max()
            .unwrap_or(4)
            .max(4);
        let lane = self.lane(max_n).clone();
        let (ntt_c, ntt_s, other_c) = lane.area_mm2();
        let pes = self.config.pes as f64;
        let lanes = self.config.lanes_per_pe as f64;
        let pe_sram = PeSram::sized_for(max_n, max_in_cts);
        let reduction_area = lanes * lane.add_area_mm2();
        let io_buffer_mm2 = 2.0 * max_n as f64 * 64.0 * 0.25e-6 * 8.0;

        let area40 = AreaBreakdown {
            lane_sram_mm2: pes * lanes * ntt_s,
            ntt_compute_mm2: pes * lanes * ntt_c,
            pe_sram_mm2: pes * pe_sram.area_mm2(),
            other_compute_mm2: pes * (lanes * other_c + reduction_area) + io_buffer_mm2,
        };
        // Leakage across the full die for the whole run.
        let leakage_j = area40.total_mm2() * 0.015 * total_latency;
        let energy40 = total_energy_40 + leakage_j;

        let area = AreaBreakdown {
            lane_sram_mm2: node.scale_area(area40.lane_sram_mm2),
            ntt_compute_mm2: node.scale_area(area40.ntt_compute_mm2),
            pe_sram_mm2: node.scale_area(area40.pe_sram_mm2),
            other_compute_mm2: node.scale_area(area40.other_compute_mm2),
        };
        let energy_j = node.scale_power(energy40);
        let mean_lane_utilization =
            layers.iter().map(|l| l.lane_utilization).sum::<f64>() / layers.len().max(1) as f64;
        let peak_io_utilization = layers.iter().map(|l| l.io_utilization).fold(0.0, f64::max);
        let network_io_utilization = (layers.iter().map(|l| l.io_s).sum::<f64>() / t).min(1.0);
        SimResult {
            pes: self.config.pes,
            lanes_per_pe: self.config.lanes_per_pe,
            latency_s: total_latency,
            energy_j,
            power_w: energy_j / t,
            area_mm2: area.total_mm2(),
            area,
            time,
            layers,
            mean_lane_utilization,
            peak_io_utilization,
            network_io_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{NODE_40NM, NODE_5NM};
    use cheetah_core::ptune::{tune_network, NoiseRegime, TuneSpace};
    use cheetah_core::{QuantSpec, Schedule};
    use cheetah_nn::models;

    fn lenet5_work() -> NetworkWork {
        let net = models::lenet5();
        let quant = QuantSpec::default();
        let layers = net.linear_layers();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let tuned = tune_network(
            &layers,
            &t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        )
        .unwrap();
        NetworkWork::from_tuned(&net.name, &tuned)
    }

    #[test]
    fn more_lanes_reduce_latency() {
        let work = lenet5_work();
        let small = Simulator::new(AcceleratorConfig::new(2, 8)).simulate(&work, NODE_40NM);
        let big = Simulator::new(AcceleratorConfig::new(2, 128)).simulate(&work, NODE_40NM);
        assert!(big.latency_s < small.latency_s);
        assert!(big.area_mm2 > small.area_mm2);
    }

    #[test]
    fn more_pes_reduce_latency_when_many_out_cts() {
        let work = lenet5_work();
        let few = Simulator::new(AcceleratorConfig::new(1, 32)).simulate(&work, NODE_40NM);
        let many = Simulator::new(AcceleratorConfig::new(8, 32)).simulate(&work, NODE_40NM);
        assert!(many.latency_s <= few.latency_s);
    }

    #[test]
    fn tech_scaling_shrinks_power_and_area() {
        let work = lenet5_work();
        let at40 = Simulator::new(AcceleratorConfig::new(4, 64)).simulate(&work, NODE_40NM);
        let at5 = Simulator::new(AcceleratorConfig::new(4, 64)).simulate(&work, NODE_5NM);
        assert!(
            (at5.latency_s - at40.latency_s).abs() < 1e-12,
            "latency is node-independent here"
        );
        assert!((at5.power_w / at40.power_w - NODE_5NM.power_factor).abs() < 0.01);
        assert!((at5.area_mm2 / at40.area_mm2 - NODE_5NM.area_factor).abs() < 0.01);
    }

    #[test]
    fn compute_bound_not_io_bound() {
        // §VIII-B3: "even in the most parallel design point considered,
        // the accelerator is compute bound (IO utilization is only 12%)".
        // The claim holds for a workload matched to the machine (the paper
        // evaluates ResNet50 on its own design) — a tiny model on a huge
        // accelerator is legitimately I/O-bound.
        let net = models::alexnet();
        let quant = QuantSpec::default();
        let layers = net.linear_layers();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let tuned = tune_network(
            &layers,
            &t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        )
        .unwrap();
        let work = NetworkWork::from_tuned(&net.name, &tuned);
        let r = Simulator::new(AcceleratorConfig::new(8, 256)).simulate(&work, NODE_40NM);
        assert!(
            r.network_io_utilization < 0.8,
            "network io util {:.2}",
            r.network_io_utilization
        );
        assert!(r.mean_lane_utilization > 0.05);
    }

    #[test]
    fn transforms_dominate_runtime() {
        // Fig. 11b: NTT and reduction dominate HE accelerator computation.
        let work = lenet5_work();
        let r = Simulator::new(AcceleratorConfig::new(4, 64)).simulate(&work, NODE_40NM);
        assert!(
            r.time.transforms > r.time.rotate_other,
            "transforms {:.2} vs rotate-other {:.2}",
            r.time.transforms,
            r.time.rotate_other
        );
        let total = r.time.transforms + r.time.mult + r.time.rotate_other + r.time.reduction;
        assert!((total - 1.0).abs() < 0.05, "fractions sum to ~1: {total}");
    }

    #[test]
    fn per_layer_records_align_with_workload() {
        let work = lenet5_work();
        let r = Simulator::new(AcceleratorConfig::new(2, 16)).simulate(&work, NODE_40NM);
        assert_eq!(r.layers.len(), work.layers.len());
        let sum: f64 = r.layers.iter().map(|l| l.latency_s).sum();
        assert!((sum - r.latency_s).abs() < 1e-9);
        assert!(r.mean_lane_utilization > 0.0 && r.mean_lane_utilization <= 1.0);
    }
}
