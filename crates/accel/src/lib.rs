//! # cheetah-accel — the Cheetah HE-inference accelerator (§VII–VIII)
//!
//! A full reproduction of the paper's hardware methodology, with the
//! Catapult-HLS + 40 nm standard-cell flow replaced by an analytical cost
//! model (see DESIGN.md for the substitution argument):
//!
//! * [`kernels`] — HLS-style per-kernel cost model (latency / power / area
//!   vs unroll, initiation interval, clock), including the small-SRAM
//!   density penalty the paper measures;
//! * [`dse`] — per-kernel design-space exploration and power-latency
//!   Pareto extraction (Fig. 10);
//! * [`arch`] / [`sim`] — the PE/Lane architecture (Fig. 9) and the
//!   activity-factor simulator mapping DNN workloads onto it;
//! * [`explore`] — the PE × Lane sweep and frontier of Fig. 11;
//! * [`generality`] — Table VI (foreign models on the ResNet50 design);
//! * [`tech`] — 40 nm → 16 nm → 5 nm scaling (0.056× power, 0.038× area).

pub mod arch;
pub mod dse;
pub mod explore;
pub mod generality;
pub mod kernels;
pub mod pareto;
pub mod sim;
pub mod tech;
pub mod workload;

pub use arch::{AcceleratorConfig, LaneModel};
pub use dse::{energy_optimal, power_latency_pareto, sweep_kernel, KernelPoint, KernelSweep};
pub use explore::{explore, ArchSweep, ExploreOutcome};
pub use generality::{generality_study, GeneralityStudy};
pub use kernels::{KernelCost, KernelDesign, KernelKind};
pub use sim::{SimResult, Simulator};
pub use tech::{TechNode, NODE_16NM, NODE_40NM, NODE_5NM};
pub use workload::{LayerWork, NetworkWork};
