//! Mapping DNN layers onto accelerator work units (§VIII-A).
//!
//! "To estimate performance and power for an input DNN, each layer is
//! represented as the number of input/output ciphertexts and partials per
//! output ciphertext." This module derives exactly that representation
//! from the HE-PTune per-layer configurations.

use cheetah_core::ptune::perf::layer_ops;
use cheetah_core::ptune::DesignPoint;
use cheetah_nn::LinearLayer;

/// One layer's accelerator workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWork {
    /// Layer name.
    pub name: String,
    /// Polynomial degree for this layer (from HE-PTune).
    pub n: usize,
    /// Ciphertext decomposition levels (`l_ct`).
    pub l_ct: usize,
    /// Plaintext decomposition levels (`l_pt`).
    pub l_pt: usize,
    /// Output-neuron ciphertexts to produce.
    pub out_cts: u64,
    /// Partial products per output ciphertext (each is one
    /// `HE_Mult` + `HE_Rotate` through a Lane).
    pub partials_per_out_ct: f64,
    /// Raw quantized weight traffic for the layer, bytes (weights are
    /// expanded to evaluation-domain plaintexts on-chip).
    pub weight_bytes: f64,
}

impl LayerWork {
    /// Total partials in the layer.
    pub fn total_partials(&self) -> f64 {
        self.out_cts as f64 * self.partials_per_out_ct
    }
}

/// A whole network's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWork {
    /// Model name.
    pub model: String,
    /// Per-layer work, in execution order.
    pub layers: Vec<LayerWork>,
}

impl NetworkWork {
    /// Builds the workload from per-layer tuned configurations.
    pub fn from_tuned(model: &str, tuned: &[(LinearLayer, DesignPoint)]) -> Self {
        let layers = tuned
            .iter()
            .map(|(layer, point)| {
                let ops = layer_ops(layer, point.n, point.l_pt());
                let out_cts = (layer.output_len() as u64).div_ceil(point.n as u64).max(1);
                let weight_count = match layer {
                    LinearLayer::Conv(c) => c.co * c.ci * c.fw * c.fw,
                    LinearLayer::Fc(f) => f.ni * f.no,
                };
                LayerWork {
                    name: layer.name().to_owned(),
                    n: point.n,
                    l_ct: point.l_ct(),
                    l_pt: point.l_pt(),
                    out_cts,
                    partials_per_out_ct: (ops.he_mult / out_cts as f64).max(1.0),
                    weight_bytes: 2.0 * weight_count as f64,
                }
            })
            .collect();
        Self {
            model: model.to_owned(),
            layers,
        }
    }

    /// Total output ciphertexts across the network (Table VI's "Out CT"
    /// column, reported in thousands there).
    pub fn total_out_cts(&self) -> u64 {
        self.layers.iter().map(|l| l.out_cts).sum()
    }

    /// Mean partials per output ciphertext (Table VI's "Prt µ").
    pub fn mean_partials_per_out_ct(&self) -> f64 {
        let total: f64 = self.layers.iter().map(LayerWork::total_partials).sum();
        total / self.total_out_cts().max(1) as f64
    }

    /// Total partials across the network.
    pub fn total_partials(&self) -> f64 {
        self.layers.iter().map(LayerWork::total_partials).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_core::ptune::{tune_network, NoiseRegime, TuneSpace};
    use cheetah_core::{QuantSpec, Schedule};
    use cheetah_nn::models;

    fn workload(net: cheetah_nn::Network) -> NetworkWork {
        let quant = QuantSpec::default();
        let layers = net.linear_layers();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let tuned = tune_network(
            &layers,
            &t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        )
        .unwrap();
        NetworkWork::from_tuned(&net.name, &tuned)
    }

    #[test]
    fn lenet5_workload_shapes() {
        let w = workload(models::lenet5());
        assert_eq!(w.layers.len(), 4);
        assert!(w.total_out_cts() >= 4);
        assert!(w.mean_partials_per_out_ct() >= 1.0);
    }

    #[test]
    fn resnet50_workload_is_substantial() {
        let w = workload(models::resnet50());
        assert_eq!(w.layers.len(), 54);
        // Hundreds+ of output CTs and tens of partials each (Table VI
        // reports 147K out-CTs at Gazelle-era packing; our tuned configs
        // pack more per ciphertext, so the count is lower but still large).
        assert!(w.total_out_cts() > 100, "out cts {}", w.total_out_cts());
        assert!(w.mean_partials_per_out_ct() > 10.0);
    }

    #[test]
    fn vgg16_heavier_than_resnet50_per_out_ct() {
        // The Table VI observation: VGG16 has far more partials per output
        // ciphertext than ResNet50 (595 vs 50.5 in the paper).
        let vgg = workload(models::vgg16());
        let res = workload(models::resnet50());
        assert!(
            vgg.mean_partials_per_out_ct() > res.mean_partials_per_out_ct(),
            "VGG {:.1} vs ResNet {:.1}",
            vgg.mean_partials_per_out_ct(),
            res.mean_partials_per_out_ct()
        );
    }
}
