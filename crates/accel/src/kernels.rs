//! HLS-style kernel cost models (§VIII-A).
//!
//! The paper builds each HE kernel (`HE_Mult`, `HE_Add`, and `HE_Rotate`
//! split into Swap / INTT / Decompose / NTT / SIMDMult / Compose) with
//! Catapult HLS against a 40 nm library at 400 MHz, sweeping memory
//! bandwidth, datapath parallelism (unrolling), and pipelining (initiation
//! interval). Neither the HLS tool nor the cell library exists here, so
//! this module substitutes a first-order analytical model with the same
//! parameter space:
//!
//! * latency = `ceil(work / unroll) · II + pipeline depth` cycles;
//! * area = datapath units × per-unit area + banked SRAM, where small
//!   SRAM banks pay the ≈2.5× bit-density penalty the paper measures for
//!   128×60 vs 1024×60 arrays;
//! * power = switching energy × activity + SRAM access energy + leakage.
//!
//! Constants are representative 40 nm figures; EXPERIMENTS.md records the
//! calibration. The DSE *mechanism* — sweep, extract Pareto, feed the
//! architecture simulator — is the paper's, reproduced exactly.

use serde::{Deserialize, Serialize};

/// The hardware kernels of the Lane datapath (Fig. 9c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Forward NTT (Harvey butterflies, strided SRAM access).
    Ntt,
    /// Inverse NTT.
    Intt,
    /// Element-wise modular multiplication (`HE_Mult`, key-switch products).
    SimdMult,
    /// Element-wise modular addition (partial reduction network).
    SimdAdd,
    /// NTT-domain Galois permutation.
    Swap,
    /// Digit decomposition (base `A_dcmp`).
    Decompose,
    /// Digit recomposition.
    Compose,
}

impl KernelKind {
    /// All kernels, in Lane dataflow order.
    pub const ALL: [KernelKind; 7] = [
        KernelKind::SimdMult,
        KernelKind::Swap,
        KernelKind::Intt,
        KernelKind::Decompose,
        KernelKind::Ntt,
        KernelKind::Compose,
        KernelKind::SimdAdd,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Ntt => "NTT",
            KernelKind::Intt => "INTT",
            KernelKind::SimdMult => "SIMDmult",
            KernelKind::SimdAdd => "SIMDadd",
            KernelKind::Swap => "Swap",
            KernelKind::Decompose => "Decompose",
            KernelKind::Compose => "Compose",
        }
    }

    /// Whether the kernel needs internal staging SRAM (strided access) —
    /// true for the transforms, false for streaming kernels (§VII-A2).
    pub fn needs_sram(&self) -> bool {
        matches!(self, KernelKind::Ntt | KernelKind::Intt)
    }
}

/// A microarchitectural design point for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelDesign {
    /// Which kernel.
    pub kind: KernelKind,
    /// Polynomial degree processed per invocation.
    pub n: usize,
    /// Datapath parallelism (operations per cycle).
    pub unroll: u32,
    /// Initiation interval (cycles between issues).
    pub ii: u32,
    /// Clock frequency in MHz (the paper targets 400).
    pub clock_mhz: f64,
}

/// Modeled cost of a kernel design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Latency per invocation, cycles.
    pub cycles: u64,
    /// Latency per invocation, seconds.
    pub latency_s: f64,
    /// Average power while active, watts @40 nm.
    pub power_w: f64,
    /// Datapath (compute) area, mm² @40 nm.
    pub compute_area_mm2: f64,
    /// SRAM area, mm² @40 nm.
    pub sram_area_mm2: f64,
    /// Internal SRAM bandwidth requirement, GB/s.
    pub sram_bw_gbps: f64,
    /// Energy per invocation, joules @40 nm.
    pub energy_j: f64,
}

impl KernelCost {
    /// Total area (compute + SRAM), mm² @40 nm.
    pub fn area_mm2(&self) -> f64 {
        self.compute_area_mm2 + self.sram_area_mm2
    }
}

// ---- 40 nm cost constants -------------------------------------------------

/// Area of one Harvey butterfly datapath (3 × 64-bit multipliers + adders),
/// mm² @40 nm.
const BUTTERFLY_AREA_MM2: f64 = 0.12;
/// Energy per butterfly operation, joules @40 nm.
const BUTTERFLY_ENERGY_J: f64 = 45.0e-12;
/// Area of one Barrett modular multiplier, mm² @40 nm.
const MODMUL_AREA_MM2: f64 = 0.018;
/// Energy per modular multiplication, joules @40 nm.
const MODMUL_ENERGY_J: f64 = 12.0e-12;
/// Area of one modular adder / mux / shifter lane, mm² @40 nm.
const SIMPLE_AREA_MM2: f64 = 0.0015;
/// Energy per simple lane operation, joules @40 nm.
const SIMPLE_ENERGY_J: f64 = 1.0e-12;
/// Large-array SRAM density, mm² per bit @40 nm (1024×60-class arrays).
const SRAM_MM2_PER_BIT_LARGE: f64 = 0.4e-6;
/// Small-array penalty: 128×60-class arrays are ≈2.5× less dense (§VIII-B3).
const SRAM_SMALL_PENALTY: f64 = 2.5;
/// Rows below which an SRAM bank pays the small-array penalty.
const SRAM_SMALL_ROWS: usize = 256;
/// SRAM read/write energy per 64-bit word, joules @40 nm.
const SRAM_ENERGY_PER_WORD_J: f64 = 8.0e-12;
/// Leakage power density, W/mm² @40 nm.
const LEAKAGE_W_PER_MM2: f64 = 0.004;
/// Pipeline fill depth, cycles.
const PIPELINE_DEPTH: u64 = 32;

/// Evaluates the cost model for a design point.
///
/// # Panics
///
/// Panics on zero unroll/ii or a non-power-of-two `n`.
pub fn evaluate(design: &KernelDesign) -> KernelCost {
    assert!(design.unroll >= 1 && design.ii >= 1);
    assert!(design.n.is_power_of_two() && design.n >= 8);
    let n = design.n as f64;
    let log_n = design.n.ilog2() as f64;
    let clock_hz = design.clock_mhz * 1e6;

    // Work items and per-item datapath characteristics.
    let (work_items, unit_area, unit_energy, words_per_item) = match design.kind {
        KernelKind::Ntt | KernelKind::Intt => (
            (n / 2.0) * log_n,
            BUTTERFLY_AREA_MM2,
            BUTTERFLY_ENERGY_J,
            4.0,
        ),
        KernelKind::SimdMult => (n, MODMUL_AREA_MM2, MODMUL_ENERGY_J, 3.0),
        KernelKind::SimdAdd => (n, SIMPLE_AREA_MM2, SIMPLE_ENERGY_J, 3.0),
        KernelKind::Swap => (n, SIMPLE_AREA_MM2, SIMPLE_ENERGY_J, 2.0),
        KernelKind::Decompose => (n, SIMPLE_AREA_MM2 * 2.0, SIMPLE_ENERGY_J * 2.0, 2.0),
        KernelKind::Compose => (n, MODMUL_AREA_MM2, MODMUL_ENERGY_J, 3.0),
    };

    let issue_slots = (work_items / design.unroll as f64).ceil() as u64;
    let cycles = issue_slots * design.ii as u64 + PIPELINE_DEPTH;
    let latency_s = cycles as f64 / clock_hz;

    let compute_area_mm2 = design.unroll as f64 * unit_area;

    // SRAM: transforms double-buffer the polynomial and hold twiddles,
    // banked so each unrolled unit gets conflict-free access. More unroll
    // => more, smaller banks => worse density (the Fig. 11c effect).
    let (sram_area_mm2, sram_bw_gbps, small_banks) = if design.kind.needs_sram() {
        // Double-buffered data + twiddle factors with Shoup companions.
        let bits = (2.0 * n + 2.0 * n) * 64.0;
        let banks = (2 * design.unroll) as usize;
        let rows_per_bank = (design.n / banks.max(1)).max(1);
        let density = if rows_per_bank < SRAM_SMALL_ROWS {
            SRAM_MM2_PER_BIT_LARGE * SRAM_SMALL_PENALTY
        } else {
            SRAM_MM2_PER_BIT_LARGE
        };
        let bw = design.unroll as f64 * words_per_item * 8.0 * clock_hz / design.ii as f64 / 1e9;
        (bits * density, bw, rows_per_bank < SRAM_SMALL_ROWS)
    } else {
        (0.0, 0.0, false)
    };

    // Energy: datapath + SRAM word movement; power = energy / latency +
    // leakage over the full footprint.
    let sram_energy = if design.kind.needs_sram() {
        // Heavily banked (small) arrays cost more energy per access.
        let bank_penalty = if small_banks { 1.5 } else { 1.0 };
        work_items * words_per_item * SRAM_ENERGY_PER_WORD_J * bank_penalty
    } else {
        0.0
    };
    // Wide datapaths pay fanout/mux energy: ~10% per doubling of unroll.
    let fanout = 1.0 + 0.1 * (design.unroll as f64).log2();
    let energy_j = work_items * unit_energy * fanout + sram_energy;
    let leakage_w = (compute_area_mm2 + sram_area_mm2) * LEAKAGE_W_PER_MM2;
    let power_w = energy_j / latency_s + leakage_w;

    KernelCost {
        cycles,
        latency_s,
        power_w,
        compute_area_mm2,
        sram_area_mm2,
        sram_bw_gbps,
        energy_j: energy_j + leakage_w * latency_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ntt(unroll: u32, ii: u32) -> KernelDesign {
        KernelDesign {
            kind: KernelKind::Ntt,
            n: 4096,
            unroll,
            ii,
            clock_mhz: 400.0,
        }
    }

    #[test]
    fn unrolling_trades_area_for_latency() {
        let slow = evaluate(&ntt(1, 1));
        let fast = evaluate(&ntt(64, 1));
        assert!(fast.cycles < slow.cycles / 32);
        assert!(fast.compute_area_mm2 > slow.compute_area_mm2 * 32.0);
        // Energy is roughly conserved (same work), within leakage slack.
        let ratio = fast.energy_j / slow.energy_j;
        assert!((0.5..2.0).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn pipelining_scales_latency() {
        let ii1 = evaluate(&ntt(4, 1));
        let ii4 = evaluate(&ntt(4, 4));
        assert!(ii4.cycles > 3 * (ii1.cycles - PIPELINE_DEPTH));
    }

    #[test]
    fn extreme_unroll_pays_small_sram_penalty() {
        // The paper's Pareto points 0/1: tiny banks are ~2.5x less dense.
        let modest = evaluate(&ntt(4, 1));
        let extreme = evaluate(&ntt(512, 1));
        let density_modest = modest.sram_area_mm2;
        let density_extreme = extreme.sram_area_mm2;
        assert!(
            density_extreme > density_modest * 2.0,
            "banked SRAM should bloat: {density_modest} -> {density_extreme}"
        );
    }

    #[test]
    fn ntt_needs_high_internal_bandwidth() {
        // §VII-A2: "each NTT kernel requires 13 GB/s of combined internal
        // bandwidth" in the worst case — our model should be in that
        // regime for a modest design.
        let c = evaluate(&ntt(1, 1));
        assert!(
            (5.0..30.0).contains(&c.sram_bw_gbps),
            "bandwidth {:.1} GB/s",
            c.sram_bw_gbps
        );
    }

    #[test]
    fn streaming_kernels_have_no_sram() {
        for kind in [
            KernelKind::SimdMult,
            KernelKind::SimdAdd,
            KernelKind::Swap,
            KernelKind::Decompose,
            KernelKind::Compose,
        ] {
            let c = evaluate(&KernelDesign {
                kind,
                n: 4096,
                unroll: 8,
                ii: 1,
                clock_mhz: 400.0,
            });
            assert_eq!(c.sram_area_mm2, 0.0, "{kind:?}");
        }
    }

    #[test]
    fn adds_are_much_cheaper_than_mults() {
        let add = evaluate(&KernelDesign {
            kind: KernelKind::SimdAdd,
            n: 4096,
            unroll: 8,
            ii: 1,
            clock_mhz: 400.0,
        });
        let mult = evaluate(&KernelDesign {
            kind: KernelKind::SimdMult,
            n: 4096,
            unroll: 8,
            ii: 1,
            clock_mhz: 400.0,
        });
        assert!(add.energy_j < mult.energy_j / 5.0);
        assert!(add.compute_area_mm2 < mult.compute_area_mm2 / 5.0);
    }
}
