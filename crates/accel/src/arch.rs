//! The Cheetah accelerator architecture (Fig. 9): output-stationary
//! ciphertext Processing Engines (PEs) built from partial-processing
//! Lanes.
//!
//! Each Lane implements one dot-product partial: two SIMDmult units
//! (ct[0]·w, ct[1]·w), then the `HE_Rotate` datapath — Swap, INTT,
//! Decompose, a parametrizable bank of NTT units covering the `l_ct`
//! decomposition digits, key-switch SIMDmults, Compose. Lanes within a PE
//! run in lockstep (shared twiddle SRAMs); a partial reduction network of
//! SIMDadd units folds partials into the output ciphertext; PEs are
//! replicated and time-multiplexed over output ciphertexts.

use crate::dse::{KernelSelection, KernelSweep};
use crate::kernels::KernelKind;

/// Top-level accelerator configuration.
#[derive(Debug, Clone)]
pub struct AcceleratorConfig {
    /// Number of processing engines (output-ciphertext parallelism).
    pub pes: u32,
    /// Lanes per PE (partial parallelism).
    pub lanes_per_pe: u32,
    /// NTT units per lane (inter-NTT parallelism across decomposition
    /// digits, §VII-A2).
    pub ntt_units_per_lane: u32,
    /// Kernel microarchitecture sweep used to pick implementations.
    pub sweep: KernelSweep,
}

impl AcceleratorConfig {
    /// A new configuration with the default kernel sweep.
    pub fn new(pes: u32, lanes_per_pe: u32) -> Self {
        Self {
            pes,
            lanes_per_pe,
            ntt_units_per_lane: 2,
            sweep: KernelSweep::default(),
        }
    }

    /// Total lanes across all PEs.
    pub fn total_lanes(&self) -> u64 {
        self.pes as u64 * self.lanes_per_pe as u64
    }
}

/// Per-stage timing/energy/area of one Lane at a fixed polynomial degree.
#[derive(Debug, Clone)]
pub struct LaneModel {
    /// Degree the model was built for.
    pub n: usize,
    /// Kernel implementation choices.
    pub selection: KernelSelection,
    /// NTT units per lane.
    pub ntt_units: u32,
}

/// Steady-state per-partial timing decomposed by stage (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaneTiming {
    /// Input SIMDmult stage (the `HE_Mult`).
    pub mult_s: f64,
    /// Swap + Decompose + Compose (rotate machinery minus transforms).
    pub rotate_other_s: f64,
    /// INTT stage.
    pub intt_s: f64,
    /// NTT stage (`ceil(l_ct / ntt_units)` sequential rounds).
    pub ntt_s: f64,
    /// Key-switch SIMDmult stage (`2·l_ct` products over `ntt_units`).
    pub ksk_mult_s: f64,
}

impl LaneTiming {
    /// Steady-state initiation interval: the lane is a pipeline, so the
    /// per-partial rate is set by the slowest stage.
    pub fn bottleneck_s(&self) -> f64 {
        [
            self.mult_s,
            self.rotate_other_s,
            self.intt_s,
            self.ntt_s,
            self.ksk_mult_s,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Pipeline fill latency for the first partial (sum of stages).
    pub fn fill_s(&self) -> f64 {
        self.mult_s + self.rotate_other_s + self.intt_s + self.ntt_s + self.ksk_mult_s
    }
}

impl LaneModel {
    /// Builds the lane model by running the kernel DSE at degree `n`
    /// (pipeline-balanced selection: the lane stays NTT-bound).
    pub fn build(n: usize, ntt_units: u32, sweep: &KernelSweep) -> Self {
        Self {
            n,
            selection: KernelSelection::balanced(n, sweep),
            ntt_units: ntt_units.max(1),
        }
    }

    /// Per-stage steady-state timing for a given `l_ct`.
    pub fn timing(&self, l_ct: usize) -> LaneTiming {
        let lat = |k: KernelKind| self.selection.get(k).cost.latency_s;
        let ntt_rounds = (l_ct as u32).div_ceil(self.ntt_units) as f64;
        LaneTiming {
            mult_s: lat(KernelKind::SimdMult),
            rotate_other_s: lat(KernelKind::Swap)
                + lat(KernelKind::Decompose)
                + lat(KernelKind::Compose),
            intt_s: lat(KernelKind::Intt),
            ntt_s: ntt_rounds * lat(KernelKind::Ntt),
            ksk_mult_s: (2 * l_ct as u32).div_ceil(self.ntt_units) as f64
                * lat(KernelKind::SimdMult),
        }
    }

    /// Energy to push one partial through the lane (joules @40 nm).
    pub fn energy_per_partial_j(&self, l_ct: usize) -> f64 {
        let e = |k: KernelKind| self.selection.get(k).cost.energy_j;
        // 2 input mults + swap + intt + l_ct digit NTTs + 2 l_ct key-switch
        // mults + decompose + compose.
        2.0 * e(KernelKind::SimdMult)
            + e(KernelKind::Swap)
            + e(KernelKind::Intt)
            + l_ct as f64 * e(KernelKind::Ntt)
            + 2.0 * l_ct as f64 * e(KernelKind::SimdMult)
            + e(KernelKind::Decompose)
            + e(KernelKind::Compose)
    }

    /// Lane silicon area (mm² @40 nm), split as
    /// `(ntt_compute, ntt_sram, other_compute)`.
    pub fn area_mm2(&self) -> (f64, f64, f64) {
        let c = |k: KernelKind| self.selection.get(k).cost;
        let transforms = self.ntt_units as f64 * c(KernelKind::Ntt).compute_area_mm2
            + c(KernelKind::Intt).compute_area_mm2;
        let transform_sram = self.ntt_units as f64 * c(KernelKind::Ntt).sram_area_mm2
            + c(KernelKind::Intt).sram_area_mm2;
        let other = 2.0 * c(KernelKind::SimdMult).compute_area_mm2
            + c(KernelKind::Swap).compute_area_mm2
            + c(KernelKind::Decompose).compute_area_mm2
            + c(KernelKind::Compose).compute_area_mm2
            + c(KernelKind::SimdMult).compute_area_mm2; // key-switch mult
        (transforms, transform_sram, other)
    }

    /// SIMDadd latency (reduction network stage time).
    pub fn add_latency_s(&self) -> f64 {
        self.selection.get(KernelKind::SimdAdd).cost.latency_s
    }

    /// SIMDadd energy per invocation.
    pub fn add_energy_j(&self) -> f64 {
        self.selection.get(KernelKind::SimdAdd).cost.energy_j
    }

    /// SIMDadd area (one reduction-network node).
    pub fn add_area_mm2(&self) -> f64 {
        self.selection.get(KernelKind::SimdAdd).cost.area_mm2()
    }
}

/// PE-level SRAM sizing (bits): input CT buffer, weight buffer, output CT
/// buffer (§VII-A1: "Input CT SRAMs are provisioned with enough capacity
/// to hold all the inputs").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeSram {
    /// Input ciphertext SRAM bits.
    pub input_bits: f64,
    /// Weight SRAM bits ("a relatively small SRAM for weights").
    pub weight_bits: f64,
    /// Output ciphertext SRAM bits (double-buffered).
    pub output_bits: f64,
}

impl PeSram {
    /// Sizes the SRAMs for a maximum working set: `max_in_cts` input
    /// ciphertexts of degree `n`.
    pub fn sized_for(n: usize, max_in_cts: u64) -> Self {
        let poly_bits = (n * 64) as f64;
        Self {
            input_bits: max_in_cts as f64 * 2.0 * poly_bits,
            weight_bits: 64.0 * 1024.0 * 8.0, // 64 KiB staging
            output_bits: 2.0 * 2.0 * poly_bits,
        }
    }

    /// Total bits.
    pub fn total_bits(&self) -> f64 {
        self.input_bits + self.weight_bits + self.output_bits
    }

    /// Area in mm² @40 nm (large-array density — these are big buffers).
    pub fn area_mm2(&self) -> f64 {
        self.total_bits() * 0.25e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane() -> LaneModel {
        LaneModel::build(4096, 2, &KernelSweep::default())
    }

    #[test]
    fn ntt_is_the_lane_bottleneck() {
        // Fig. 11b's conclusion: NTT dominates lane time.
        let lane = lane();
        let t = lane.timing(3);
        assert!(
            t.ntt_s >= t.mult_s && t.ntt_s >= t.rotate_other_s,
            "NTT {:.2e} should dominate: {t:?}",
            t.ntt_s
        );
        assert_eq!(t.bottleneck_s(), t.ntt_s.max(t.ksk_mult_s));
        assert!(t.fill_s() > t.bottleneck_s());
    }

    #[test]
    fn more_ntt_units_shorten_the_ntt_stage() {
        let narrow = LaneModel::build(4096, 1, &KernelSweep::default());
        let wide = LaneModel::build(4096, 4, &KernelSweep::default());
        let l_ct = 4;
        assert!(wide.timing(l_ct).ntt_s < narrow.timing(l_ct).ntt_s);
    }

    #[test]
    fn deeper_decomposition_costs_more() {
        let lane = lane();
        assert!(lane.energy_per_partial_j(6) > lane.energy_per_partial_j(2));
        assert!(lane.timing(6).ntt_s >= lane.timing(2).ntt_s);
    }

    #[test]
    fn lane_area_is_dominated_by_transform_machinery() {
        let lane = lane();
        let (ntt_c, ntt_s, other) = lane.area_mm2();
        assert!(
            ntt_c + ntt_s > other,
            "transforms {ntt_c}+{ntt_s} vs {other}"
        );
    }

    #[test]
    fn pe_sram_scales_with_working_set() {
        let small = PeSram::sized_for(4096, 4);
        let big = PeSram::sized_for(4096, 64);
        assert!(big.input_bits > 10.0 * small.input_bits);
        assert!(big.area_mm2() > small.area_mm2());
    }

    #[test]
    fn config_total_lanes() {
        let cfg = AcceleratorConfig::new(8, 512);
        assert_eq!(cfg.total_lanes(), 4096);
    }
}
