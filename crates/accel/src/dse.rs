//! Per-kernel design-space exploration (§VIII-A, Fig. 10).
//!
//! "For each kernel, we evaluate hundreds of design points to explore
//! different design tradeoffs and identify optimal implementations." The
//! sweep covers unrolling, initiation interval and (for completeness)
//! clock; the power-latency Pareto frontier feeds the architecture
//! simulator, and the *energy-optimal* frontier point is the default lane
//! building block (§VIII-B1).

use crate::kernels::{evaluate, KernelCost, KernelDesign, KernelKind};
use crate::pareto::pareto_front;

/// A fully evaluated kernel design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPoint {
    /// The microarchitecture.
    pub design: KernelDesign,
    /// Its modeled cost.
    pub cost: KernelCost,
}

/// Sweep configuration for one kernel.
#[derive(Debug, Clone)]
pub struct KernelSweep {
    /// Unroll factors to try.
    pub unrolls: Vec<u32>,
    /// Initiation intervals to try.
    pub iis: Vec<u32>,
    /// Clock frequencies (MHz) to try.
    pub clocks: Vec<f64>,
}

impl Default for KernelSweep {
    fn default() -> Self {
        Self {
            unrolls: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            iis: vec![1, 2, 4],
            clocks: vec![400.0],
        }
    }
}

impl KernelSweep {
    /// Number of design points per kernel.
    pub fn size(&self) -> usize {
        self.unrolls.len() * self.iis.len() * self.clocks.len()
    }
}

/// Evaluates every point of the sweep for one kernel.
pub fn sweep_kernel(kind: KernelKind, n: usize, sweep: &KernelSweep) -> Vec<KernelPoint> {
    let mut out = Vec::with_capacity(sweep.size());
    for &unroll in &sweep.unrolls {
        if unroll as usize > n {
            continue;
        }
        for &ii in &sweep.iis {
            for &clock_mhz in &sweep.clocks {
                let design = KernelDesign {
                    kind,
                    n,
                    unroll,
                    ii,
                    clock_mhz,
                };
                out.push(KernelPoint {
                    design,
                    cost: evaluate(&design),
                });
            }
        }
    }
    out
}

/// Power-latency Pareto frontier of a point set (both minimized).
pub fn power_latency_pareto(points: &[KernelPoint]) -> Vec<KernelPoint> {
    pareto_front(points, |p| (p.cost.latency_s, p.cost.power_w))
}

/// The energy-optimal point on the power-latency Pareto frontier — the
/// paper's per-kernel selection rule ("the energy-optimal point from the
/// power-latency Pareto frontier", §VIII-B1).
///
/// Returns `None` only for an empty sweep.
pub fn energy_optimal(points: &[KernelPoint]) -> Option<KernelPoint> {
    power_latency_pareto(points)
        .into_iter()
        .min_by(|a, b| a.cost.energy_j.total_cmp(&b.cost.energy_j))
}

/// A kernel implementation choice for every Lane kernel.
#[derive(Debug, Clone)]
pub struct KernelSelection {
    /// `(kind, chosen point)` for each of the seven Lane kernels.
    pub choices: Vec<(KernelKind, KernelPoint)>,
}

impl KernelSelection {
    /// Picks the energy-optimal implementation for every kernel at degree
    /// `n`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sweep.
    pub fn energy_optimal_all(n: usize, sweep: &KernelSweep) -> Self {
        let choices = KernelKind::ALL
            .iter()
            .map(|&kind| {
                let points = sweep_kernel(kind, n, sweep);
                (
                    kind,
                    energy_optimal(&points).expect("sweep must be non-empty"),
                )
            })
            .collect();
        Self { choices }
    }

    /// Picks a *pipeline-balanced* lane: the NTT (the dominant kernel) gets
    /// its energy-optimal frontier point, and every other kernel gets the
    /// smallest-area design that keeps its stage comfortably under the NTT
    /// stage latency — so the lane initiation interval stays NTT-bound, as
    /// the paper's lane is.
    ///
    /// # Panics
    ///
    /// Panics on an empty sweep.
    pub fn balanced(n: usize, sweep: &KernelSweep) -> Self {
        let ntt_points = sweep_kernel(KernelKind::Ntt, n, sweep);
        let ntt = energy_optimal(&ntt_points).expect("sweep must be non-empty");
        let target = ntt.cost.latency_s;
        let choices = KernelKind::ALL
            .iter()
            .map(|&kind| {
                if kind == KernelKind::Ntt {
                    return (kind, ntt);
                }
                let points = sweep_kernel(kind, n, sweep);
                if kind == KernelKind::Intt {
                    // Same machinery as the NTT; same design point family.
                    return (kind, energy_optimal(&points).expect("non-empty"));
                }
                // Swap/Decompose/Compose share the rotate path: each gets a
                // quarter of the NTT budget; multiplies and adds get half.
                let fraction = match kind {
                    KernelKind::SimdMult | KernelKind::SimdAdd => 0.5,
                    _ => 0.25,
                };
                let budget = target * fraction;
                let chosen = points
                    .iter()
                    .filter(|p| p.cost.latency_s <= budget)
                    .min_by(|a, b| a.cost.area_mm2().total_cmp(&b.cost.area_mm2()))
                    .copied()
                    .or_else(|| {
                        points
                            .iter()
                            .min_by(|a, b| a.cost.latency_s.total_cmp(&b.cost.latency_s))
                            .copied()
                    })
                    .expect("non-empty sweep");
                (kind, chosen)
            })
            .collect();
        Self { choices }
    }

    /// Looks up the chosen point for a kernel.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is not in the selection.
    pub fn get(&self, kind: KernelKind) -> &KernelPoint {
        self.choices
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| p)
            .expect("kernel present in selection")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_many_points() {
        let points = sweep_kernel(KernelKind::Ntt, 4096, &KernelSweep::default());
        assert!(points.len() >= 30, "got {}", points.len());
    }

    #[test]
    fn pareto_is_nonempty_and_monotone() {
        let points = sweep_kernel(KernelKind::Ntt, 4096, &KernelSweep::default());
        let front = power_latency_pareto(&points);
        assert!(!front.is_empty());
        assert!(front.len() < points.len(), "frontier should prune points");
        for w in front.windows(2) {
            assert!(w[0].cost.latency_s <= w[1].cost.latency_s);
            assert!(w[0].cost.power_w >= w[1].cost.power_w);
        }
    }

    #[test]
    fn faster_designs_cost_more_power_on_frontier() {
        let points = sweep_kernel(KernelKind::Ntt, 4096, &KernelSweep::default());
        let front = power_latency_pareto(&points);
        let fastest = front.first().unwrap();
        let slowest = front.last().unwrap();
        assert!(fastest.cost.power_w > slowest.cost.power_w);
        assert!(fastest.cost.latency_s < slowest.cost.latency_s);
    }

    #[test]
    fn energy_optimal_exists_for_all_kernels() {
        let sel = KernelSelection::energy_optimal_all(4096, &KernelSweep::default());
        assert_eq!(sel.choices.len(), KernelKind::ALL.len());
        for (kind, point) in &sel.choices {
            assert_eq!(point.design.kind, *kind);
            assert!(point.cost.energy_j > 0.0);
        }
        // Lookup works.
        let _ = sel.get(KernelKind::Ntt);
    }

    #[test]
    fn unroll_beyond_n_skipped() {
        let sweep = KernelSweep {
            unrolls: vec![1, 4096],
            iis: vec![1],
            clocks: vec![400.0],
        };
        let points = sweep_kernel(KernelKind::SimdAdd, 1024, &sweep);
        assert_eq!(points.len(), 1);
    }
}
