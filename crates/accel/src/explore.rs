//! Full accelerator design-space exploration (§VIII-B3, Fig. 11):
//! sweep PEs and Lanes, simulate the workload at each point, extract the
//! power-latency Pareto frontier, and pick the design meeting a target
//! latency at minimum power.

use crate::arch::AcceleratorConfig;
use crate::pareto::pareto_front;
use crate::sim::{SimResult, Simulator};
use crate::tech::TechNode;
use crate::workload::NetworkWork;

/// The PE/Lane sweep ranges (§VIII-A: "PEs per accelerator are swept from
/// 2-1024 and lanes per PE from 4-8192").
#[derive(Debug, Clone)]
pub struct ArchSweep {
    /// PE counts to try.
    pub pes: Vec<u32>,
    /// Lanes-per-PE counts to try.
    pub lanes: Vec<u32>,
    /// Skip configurations whose total lane count exceeds this (keeps the
    /// sweep within simulable/affordable bounds).
    pub max_total_lanes: u64,
}

impl Default for ArchSweep {
    fn default() -> Self {
        Self {
            pes: vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            lanes: vec![4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192],
            max_total_lanes: 1 << 16,
        }
    }
}

impl ArchSweep {
    /// A reduced sweep for tests.
    pub fn small() -> Self {
        Self {
            pes: vec![2, 8, 32],
            lanes: vec![8, 64, 512],
            max_total_lanes: 1 << 15,
        }
    }
}

/// Result of the architecture DSE.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Every simulated point.
    pub points: Vec<SimResult>,
    /// Power-latency Pareto frontier (sorted by latency).
    pub frontier: Vec<SimResult>,
}

impl ExploreOutcome {
    /// The minimum-power frontier design with latency ≤ `target_s`
    /// (the paper's "PT-ResNet50" selection at 100 ms), if any.
    pub fn design_for_target(&self, target_s: f64) -> Option<&SimResult> {
        self.frontier
            .iter()
            .filter(|r| r.latency_s <= target_s)
            .min_by(|a, b| a.power_w.total_cmp(&b.power_w))
    }

    /// The minimum-latency design regardless of power.
    pub fn fastest(&self) -> Option<&SimResult> {
        self.frontier.first()
    }
}

/// Runs the sweep for one workload at one technology node.
pub fn explore(work: &NetworkWork, sweep: &ArchSweep, node: TechNode) -> ExploreOutcome {
    let mut points = Vec::new();
    for &pes in &sweep.pes {
        for &lanes in &sweep.lanes {
            let cfg = AcceleratorConfig::new(pes, lanes);
            if cfg.total_lanes() > sweep.max_total_lanes {
                continue;
            }
            points.push(Simulator::new(cfg).simulate(work, node));
        }
    }
    let frontier = pareto_front(&points, |r| (r.latency_s, r.power_w));
    ExploreOutcome { points, frontier }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::NODE_5NM;
    use cheetah_core::ptune::{tune_network, NoiseRegime, TuneSpace};
    use cheetah_core::{QuantSpec, Schedule};
    use cheetah_nn::models;

    fn work(net: cheetah_nn::Network) -> NetworkWork {
        let quant = QuantSpec::default();
        let layers = net.linear_layers();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let tuned = tune_network(
            &layers,
            &t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        )
        .unwrap();
        NetworkWork::from_tuned(&net.name, &tuned)
    }

    #[test]
    fn frontier_trades_power_for_latency() {
        let outcome = explore(&work(models::lenet5()), &ArchSweep::small(), NODE_5NM);
        assert!(!outcome.frontier.is_empty());
        assert!(outcome.points.len() > outcome.frontier.len());
        for w in outcome.frontier.windows(2) {
            assert!(w[0].latency_s <= w[1].latency_s);
            assert!(w[0].power_w >= w[1].power_w);
        }
    }

    #[test]
    fn target_selection_respects_latency() {
        let outcome = explore(&work(models::lenet5()), &ArchSweep::small(), NODE_5NM);
        let fastest = outcome.fastest().unwrap().latency_s;
        let design = outcome.design_for_target(fastest * 2.0).unwrap();
        assert!(design.latency_s <= fastest * 2.0);
        // A looser target never costs more power.
        let tight = outcome.design_for_target(fastest * 1.01).unwrap();
        assert!(design.power_w <= tight.power_w + 1e-12);
    }
}
