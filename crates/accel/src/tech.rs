//! Technology scaling (§VIII-A).
//!
//! Kernel costs are modeled at 40 nm (the paper's synthesis node) and
//! scaled to 16 nm and 5 nm with the foundry-reported factors the paper
//! cites: 0.2× power / 0.22× area from 40 nm to 16 nm, then 0.32× power /
//! 0.17× area from 16 nm to 5 nm — combined 0.056× power and 0.038× area.

/// A process node with scaling factors *relative to 40 nm*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Human-readable name.
    pub name: &'static str,
    /// Power multiplier vs 40 nm.
    pub power_factor: f64,
    /// Area multiplier vs 40 nm.
    pub area_factor: f64,
}

/// The 40 nm synthesis node (identity scaling).
pub const NODE_40NM: TechNode = TechNode {
    name: "40nm",
    power_factor: 1.0,
    area_factor: 1.0,
};

/// 16 nm: 0.2× power, 0.22× area vs 40 nm.
pub const NODE_16NM: TechNode = TechNode {
    name: "16nm",
    power_factor: 0.2,
    area_factor: 0.22,
};

/// 5 nm: a further 0.32× power and 0.17× area vs 16 nm
/// (0.056× / 0.0374× vs 40 nm).
pub const NODE_5NM: TechNode = TechNode {
    name: "5nm",
    power_factor: 0.2 * 0.32,
    area_factor: 0.22 * 0.17,
};

impl TechNode {
    /// Scales a 40 nm power figure to this node.
    pub fn scale_power(&self, watts_40nm: f64) -> f64 {
        watts_40nm * self.power_factor
    }

    /// Scales a 40 nm area figure to this node.
    pub fn scale_area(&self, mm2_40nm: f64) -> f64 {
        mm2_40nm * self.area_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_factors_match_paper() {
        // The paper quotes stage factors of 0.2×/0.32× power and
        // 0.22×/0.17× area, and combined factors of "0.056× and 0.038×".
        // The area product checks out (0.0374 ≈ 0.038); the power product
        // is 0.064 — the paper's own 0.056 is internally inconsistent with
        // its stage factors. We keep the stage factors as ground truth.
        assert!((NODE_5NM.power_factor - 0.064).abs() < 1e-9);
        assert!((NODE_5NM.area_factor - 0.038).abs() < 1e-3);
    }

    #[test]
    fn scaling_is_linear() {
        assert!((NODE_16NM.scale_power(100.0) - 20.0).abs() < 1e-9);
        assert!((NODE_16NM.scale_area(100.0) - 22.0).abs() < 1e-9);
        assert_eq!(NODE_40NM.scale_power(7.0), 7.0);
    }
}
