//! Network-level kernel time breakdown — Fig. 7(a).
//!
//! Combines HE-PTune's per-layer operator counts (Table IV) with measured
//! per-kernel latencies ([`crate::kernels`]) to attribute total inference
//! time across NTT / Rotate / Mult / Add / Other, the way the paper's SEAL
//! profile does for ResNet50 (55.2 % / 31.8 % / 10.3 % / 2.2 % / 0.5 %).

use cheetah_bfv::BfvParams;
use cheetah_core::cost::HeCostParams;
use cheetah_core::ptune::perf::layer_ops;
use cheetah_core::ptune::{ChainPlan, DesignPoint};
use cheetah_nn::LinearLayer;

use crate::kernels::{KernelConfig, KernelTimer, KernelTimes};

/// Seconds attributed to each hot kernel across a full inference.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// NTT time (including NTTs inside rotations, as in Fig. 7).
    pub ntt_s: f64,
    /// `HE_Rotate` time excluding its NTTs.
    pub rotate_s: f64,
    /// `HE_Mult` time.
    pub mult_s: f64,
    /// `HE_Add` time.
    pub add_s: f64,
    /// Construction/destruction and other bookkeeping.
    pub other_s: f64,
}

impl Breakdown {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.ntt_s + self.rotate_s + self.mult_s + self.add_s + self.other_s
    }

    /// Percentage shares in Fig. 7 order (NTT, Rotate, Mult, Add, Other).
    pub fn shares(&self) -> [f64; 5] {
        let t = self.total_s().max(f64::MIN_POSITIVE);
        [
            self.ntt_s / t * 100.0,
            self.rotate_s / t * 100.0,
            self.mult_s / t * 100.0,
            self.add_s / t * 100.0,
            self.other_s / t * 100.0,
        ]
    }

    /// Adds another breakdown (layer accumulation).
    pub fn accumulate(&mut self, other: &Breakdown) {
        self.ntt_s += other.ntt_s;
        self.rotate_s += other.rotate_s;
        self.mult_s += other.mult_s;
        self.add_s += other.add_s;
        self.other_s += other.other_s;
    }
}

/// Computes one layer's breakdown under its tuned configuration.
pub fn layer_breakdown(layer: &LinearLayer, point: &DesignPoint, times: &KernelTimes) -> Breakdown {
    let l_pt = point.l_pt();
    let ops = layer_ops(layer, point.n, l_pt);
    // Plane-transform count via the shared cost model (DesignPoint sweeps
    // single-word moduli, so limbs = 1 — but the formula stays in one
    // place instead of re-deriving `l_ct + 1` here).
    let cost = HeCostParams {
        n: point.n,
        l_pt,
        l_ct: point.l_ct(),
        limbs: 1,
        hybrid: false,
    };
    let ntts_per_rotate = cost.ntts_per_rotate() as f64;
    Breakdown {
        ntt_s: ops.he_rotate * ntts_per_rotate * times.ntt_s,
        rotate_s: ops.he_rotate * times.rotate_excl_ntt_s,
        mult_s: ops.he_mult * times.mult_s,
        add_s: ops.he_add * times.add_s,
        other_s: (ops.he_mult + ops.he_rotate + ops.he_add) * times.other_s,
    }
}

/// Computes one layer's breakdown on a **concrete chain at a level** —
/// the HE-PTune v2 path. Unlike [`layer_breakdown`] (which prices the
/// tuner's abstract single-word points with digit decomposition), this
/// uses [`HeCostParams::for_bfv`], so special-prime chains are billed the
/// hybrid transform count (`live² + 6·live + 2` per rotate over `live + 1`
/// planes) and digit chains the `(l_ct + 1)·live` count. `times` must be
/// measured at the chain's limb width — per-plane kernels, not a wide
/// single word.
pub fn layer_breakdown_on_chain(
    layer: &LinearLayer,
    params: &BfvParams,
    level: usize,
    times: &KernelTimes,
) -> Breakdown {
    let cost = HeCostParams::for_bfv(params, level);
    let ops = layer_ops(layer, params.degree(), params.l_pt());
    // Per-plane kernel times: every transform and pointwise pass is
    // billed once per live plane (`+1` for the key-switch plane on hybrid
    // chains), which is exactly what `ntts_per_rotate` already counts.
    let planes = cost.ks_planes() as f64;
    let ntts_per_rotate = cost.ntts_per_rotate() as f64;
    Breakdown {
        ntt_s: ops.he_rotate * ntts_per_rotate * times.ntt_s,
        rotate_s: ops.he_rotate * planes * times.rotate_excl_ntt_s,
        mult_s: ops.he_mult * planes * times.mult_s,
        add_s: ops.he_add * planes * times.add_s,
        other_s: (ops.he_mult + ops.he_rotate + ops.he_add) * times.other_s,
    }
}

/// The kernel-timer configuration that matches a chain's per-plane
/// kernels: degree, the (uniform) limb width, and the chain's rotation
/// decomposition base.
pub fn chain_kernel_config(params: &BfvParams) -> KernelConfig {
    let limb_bits = 64 - params.chain().modulus(0).value().leading_zeros();
    KernelConfig {
        n: params.degree(),
        q_bits: limb_bits,
        a_dcmp_log2: params.a_dcmp().trailing_zeros(),
    }
}

/// Computes the full-network breakdown of a solver-produced
/// [`ChainPlan`]: every layer billed on the plan's chain at its planned
/// level, with kernels measured once at the chain's limb width.
pub fn chain_breakdown(
    layers: &[LinearLayer],
    plan: &ChainPlan,
    timer: &mut KernelTimer,
) -> Breakdown {
    let times = timer.measure(chain_kernel_config(&plan.params));
    let mut total = Breakdown::default();
    for (layer, lp) in layers.iter().zip(&plan.layers) {
        total.accumulate(&layer_breakdown_on_chain(
            layer,
            &plan.params,
            lp.level,
            &times,
        ));
    }
    total
}

/// Computes the full-network breakdown for per-layer tuned configurations.
pub fn network_breakdown(
    tuned: &[(LinearLayer, DesignPoint)],
    timer: &mut KernelTimer,
) -> Breakdown {
    let mut total = Breakdown::default();
    for (layer, point) in tuned {
        let times = timer.measure(KernelConfig {
            n: point.n,
            q_bits: point.q_bits,
            a_dcmp_log2: point.a_dcmp_log2,
        });
        total.accumulate(&layer_breakdown(layer, point, &times));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_core::ptune::{tune_network, NoiseRegime, TuneSpace};
    use cheetah_core::{QuantSpec, Schedule};
    use cheetah_nn::models;

    #[test]
    fn lenet5_breakdown_is_ntt_dominated() {
        // The Fig. 7 headline: NTT is the top kernel, adds are negligible.
        let quant = QuantSpec::default();
        let layers = models::lenet5().linear_layers();
        let t_bits: Vec<u32> = layers
            .iter()
            .map(|l| quant.statistical_plain_bits(l))
            .collect();
        let tuned = tune_network(
            &layers,
            &t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &TuneSpace::default(),
        )
        .unwrap();
        let mut timer = KernelTimer::new(3);
        let b = network_breakdown(&tuned, &mut timer);
        let shares = b.shares();
        assert!(b.total_s() > 0.0);
        assert!(
            shares[0] > shares[3],
            "NTT share {:.1}% should exceed Add share {:.1}%",
            shares[0],
            shares[3]
        );
        assert!(
            shares[0] + shares[1] > 50.0,
            "rotation machinery (NTT + rotate) should dominate: {shares:?}"
        );
        let sum: f64 = shares.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn hybrid_chain_breakdown_beats_its_equal_plane_digit_twin() {
        // The Fig. 7 fix this PR lands: breakdowns must price the hybrid
        // key-switch path. At equal total plane count (2 data limbs + P
        // vs 3 data limbs), a rotation's transform bill is 18 vs 21, so
        // the hybrid chain's NTT seconds — same measured kernels — must
        // come out strictly lower.
        let hybrid = BfvParams::preset_hybrid_2x36(4096).unwrap();
        let digit = BfvParams::preset_rns_3x36(4096).unwrap();
        let layer = &models::lenet5().linear_layers()[0];
        let mut timer = KernelTimer::new(2);
        let times = timer.measure(chain_kernel_config(&hybrid));
        let bh = layer_breakdown_on_chain(layer, &hybrid, 0, &times);
        let bd = layer_breakdown_on_chain(layer, &digit, 0, &times);
        assert!(bh.total_s() > 0.0);
        assert!(
            bh.ntt_s < bd.ntt_s,
            "hybrid NTT seconds {:.3e} must beat the digit twin {:.3e}",
            bh.ntt_s,
            bd.ntt_s
        );
    }

    #[test]
    fn chain_breakdown_covers_every_planned_layer() {
        use cheetah_core::ptune::solve_chain_plan;

        let net = models::tiny_cnn();
        let layers = net.linear_layers();
        let plan = solve_chain_plan(
            &layers,
            &QuantSpec::default(),
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &[4096],
        )
        .unwrap();
        let mut timer = KernelTimer::new(2);
        let b = chain_breakdown(&layers, &plan, &mut timer);
        assert!(b.total_s() > 0.0);
        let shares = b.shares();
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let a = Breakdown {
            ntt_s: 1.0,
            rotate_s: 2.0,
            mult_s: 3.0,
            add_s: 4.0,
            other_s: 5.0,
        };
        let mut b = a;
        b.accumulate(&a);
        assert_eq!(b.total_s(), 2.0 * a.total_s());
    }
}
