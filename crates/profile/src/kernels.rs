//! Measured per-kernel latencies of the real BFV engine.
//!
//! The Fig. 7 profile multiplies *measured* kernel times by *modeled*
//! kernel counts (Table IV), reproducing the paper's methodology at
//! tractable scale: the paper ran the full 970-second ResNet50 inference
//! under SEAL and attributed time with a profiler; we measure each hot
//! kernel directly (they are the same kernels) and scale by the same
//! per-layer counts its DSE uses.

use std::collections::HashMap;
use std::time::Instant;

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Encryptor, Evaluator, GaloisKeys, KeyGenerator,
    PreparedPlaintext, SecurityLevel,
};

/// Measured seconds per kernel invocation at one parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTimes {
    /// One forward/inverse NTT.
    pub ntt_s: f64,
    /// One `HE_Mult` (2 pointwise polynomial multiplications), `l_pt = 1`.
    pub mult_s: f64,
    /// One `HE_Add`.
    pub add_s: f64,
    /// One `HE_Rotate`, *excluding* its internal NTTs (they are attributed
    /// to the NTT bucket, as in Fig. 7).
    pub rotate_excl_ntt_s: f64,
    /// One full `HE_Rotate` including NTTs.
    pub rotate_total_s: f64,
    /// One hoist (`Evaluator::hoist_into`): the INTT + decompose + digit
    /// NTT precomputation a same-source rotation set shares.
    pub hoist_s: f64,
    /// One hoisted rotation replay (`Evaluator::rotate_hoisted_into`):
    /// permutations + key-switch inner products, zero NTTs — the marginal
    /// cost of each extra baby step in a BSGS layer.
    pub rotate_hoisted_s: f64,
    /// Per-operation bookkeeping overhead (allocation/copy) — the "Other"
    /// sliver of Fig. 7.
    pub other_s: f64,
}

/// Key identifying a measurement configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelConfig {
    /// Polynomial degree.
    pub n: usize,
    /// Ciphertext modulus bits.
    pub q_bits: u32,
    /// `log2(A_dcmp)` (sets `l_ct`, the rotate cost).
    pub a_dcmp_log2: u32,
}

/// Lazily measures and caches kernel times per configuration.
#[derive(Debug, Default)]
pub struct KernelTimer {
    cache: HashMap<KernelConfig, KernelTimes>,
    /// Repetitions per measurement (higher = steadier).
    pub reps: u32,
}

impl KernelTimer {
    /// Creates a timer with the given repetition count.
    pub fn new(reps: u32) -> Self {
        Self {
            cache: HashMap::new(),
            reps: reps.max(1),
        }
    }

    /// Measures (or returns cached) kernel times for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot be instantiated (no NTT prime).
    pub fn measure(&mut self, cfg: KernelConfig) -> KernelTimes {
        if let Some(t) = self.cache.get(&cfg) {
            return *t;
        }
        let times = measure_kernels(cfg, self.reps);
        self.cache.insert(cfg, times);
        times
    }
}

struct Bench {
    params: BfvParams,
    eval: Evaluator,
    keys: GaloisKeys,
    ct: Ciphertext,
    ct2: Ciphertext,
    pt: PreparedPlaintext,
}

fn setup(cfg: KernelConfig) -> Bench {
    let params = BfvParams::builder()
        .degree(cfg.n)
        .plain_bits(17)
        .cipher_bits(cfg.q_bits)
        .a_dcmp(1u64 << cfg.a_dcmp_log2)
        // Sweeps cover insecure corners too; the timer must still run them.
        .security(SecurityLevel::None)
        .build()
        .expect("kernel-timing parameters must instantiate");
    let mut kg = KeyGenerator::from_seed(params.clone(), 2024);
    let pk = kg.public_key().expect("public key");
    let keys = kg.galois_keys_for_steps(&[1]).expect("galois key");
    let encoder = BatchEncoder::new(params.clone());
    let mut enc = Encryptor::from_public_key(pk, 7);
    let eval = Evaluator::new(params.clone());
    let values: Vec<u64> = (0..cfg.n as u64).collect();
    let pt_raw = encoder.encode(&values).expect("encode");
    let ct = enc.encrypt(&pt_raw).expect("encrypt");
    let ct2 = enc.encrypt(&pt_raw).expect("encrypt");
    let pt = eval.prepare_plaintext(&pt_raw).expect("prepare");
    Bench {
        params,
        eval,
        keys,
        ct,
        ct2,
        pt,
    }
}

fn time_loop<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    // One warmup.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn measure_kernels(cfg: KernelConfig, reps: u32) -> KernelTimes {
    let b = setup(cfg);
    // One limb-plane transform of the first chain limb — the scalar NTT
    // unit the Fig. 7 attribution multiplies by modeled counts.
    let table = b.params.chain().table(0);

    let mut scratch: Vec<u64> = b.ct.c0().limb(0).to_vec();
    let ntt_s = time_loop(reps, || {
        table.forward(&mut scratch);
    });

    let mult_s = time_loop(reps, || {
        let _ = b.eval.mul_plain(&b.ct, &b.pt).expect("mult");
    });

    let add_s = time_loop(reps, || {
        let _ = b.eval.add(&b.ct, &b.ct2).expect("add");
    });

    let rotate_total_s = time_loop(reps, || {
        let _ = b.eval.rotate_rows(&b.ct, 1, &b.keys).expect("rotate");
    });

    // Hoisted-rotation split: the one-time hoist and the per-step replay —
    // what BSGS layers (b − 1 replays + g − 1 direct rotations) are priced
    // from.
    let mut scratch = b.eval.new_scratch();
    let mut hoisted = cheetah_bfv::HoistedDecomposition::empty(&b.params);
    let hoist_s = time_loop(reps, || {
        b.eval
            .hoist_into(&mut hoisted, &b.ct, &mut scratch)
            .expect("hoist");
    });
    let mut replay_out = Ciphertext::transparent_zero(&b.params);
    let rotate_hoisted_s = time_loop(reps, || {
        b.eval
            .rotate_hoisted_into(&mut replay_out, &b.ct, &hoisted, 1, &b.keys, &mut scratch)
            .expect("hoisted replay");
    });

    // Attribute the rotate's internal NTT plane transforms to the NTT
    // bucket (Fig. 7), via the shared per-level cost model (kernel timing
    // runs at level 0; leveled circuits scale by the live counts).
    let ntts_in_rotate =
        cheetah_core::cost::HeCostParams::for_bfv(&b.params, 0).ntts_per_rotate() as f64;
    let rotate_excl_ntt_s = (rotate_total_s - ntts_in_rotate * ntt_s).max(rotate_total_s * 0.05);

    let other_s = time_loop(reps, || {
        let _ = b.ct.clone();
    });

    KernelTimes {
        ntt_s,
        mult_s,
        add_s,
        rotate_excl_ntt_s,
        rotate_total_s,
        hoist_s,
        rotate_hoisted_s,
        other_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_times_are_sane() {
        let mut timer = KernelTimer::new(3);
        let t = timer.measure(KernelConfig {
            n: 2048,
            q_bits: 54,
            a_dcmp_log2: 16,
        });
        assert!(t.ntt_s > 0.0);
        assert!(
            t.add_s < t.mult_s,
            "add {:.2e} vs mult {:.2e}",
            t.add_s,
            t.mult_s
        );
        assert!(
            t.rotate_total_s > t.mult_s,
            "rotate {:.2e} should dominate mult {:.2e}",
            t.rotate_total_s,
            t.mult_s
        );
        assert!(t.rotate_excl_ntt_s < t.rotate_total_s);
        // A hoisted replay skips every NTT: it must be measurably cheaper
        // than a full rotation (the BSGS pricing premise).
        assert!(
            t.rotate_hoisted_s < t.rotate_total_s,
            "replay {:.2e} vs rotate {:.2e}",
            t.rotate_hoisted_s,
            t.rotate_total_s
        );
        assert!(t.hoist_s > 0.0);
    }

    #[test]
    fn cache_returns_identical_values() {
        let mut timer = KernelTimer::new(2);
        let cfg = KernelConfig {
            n: 2048,
            q_bits: 54,
            a_dcmp_log2: 16,
        };
        let a = timer.measure(cfg);
        let b = timer.measure(cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn larger_degree_costs_more() {
        let mut timer = KernelTimer::new(2);
        let small = timer.measure(KernelConfig {
            n: 2048,
            q_bits: 54,
            a_dcmp_log2: 16,
        });
        let big = timer.measure(KernelConfig {
            n: 8192,
            q_bits: 60,
            a_dcmp_log2: 16,
        });
        assert!(big.ntt_s > small.ntt_s);
        assert!(big.mult_s > small.mult_s);
    }
}
