//! # cheetah-profile — HE inference profiling (§VI)
//!
//! Reproduces the paper's profiling study: measured per-kernel latencies of
//! the real BFV engine ([`kernels`]), combined with HE-PTune operator
//! counts into the Fig. 7(a) time breakdown ([`breakdown`]), and the
//! Fig. 7(b) limit study deriving the per-kernel speedups hardware must
//! deliver for plaintext-latency inference ([`limit`]).

pub mod breakdown;
pub mod kernels;
pub mod limit;

pub use breakdown::{
    chain_breakdown, chain_kernel_config, layer_breakdown, layer_breakdown_on_chain,
    network_breakdown, Breakdown,
};
pub use kernels::{KernelConfig, KernelTimer, KernelTimes};
pub use limit::{limit_study, Kernel, LimitStudy};
