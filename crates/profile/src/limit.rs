//! The Fig. 7(b) limit study: how much speedup each HE kernel needs for
//! plaintext-latency inference.
//!
//! The paper applies successive power-of-two speedup factors per kernel
//! ("kernel speedup is applied successively where the run time from the
//! most aggressive speedup factor is taken as the base for the next
//! function") until total latency reaches the 100 ms plaintext target,
//! ending at NTT 16384×, Rotate 8192×, Mult 4096×, Add 4096×. We implement
//! the equivalent greedy: repeatedly double the factor of the kernel that
//! currently dominates the runtime.

use crate::breakdown::Breakdown;

/// The four accelerated kernels, in Fig. 7 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Number-theoretic transform.
    Ntt,
    /// `HE_Rotate` (excluding NTTs).
    Rotate,
    /// `HE_Mult`.
    Mult,
    /// `HE_Add`.
    Add,
}

impl Kernel {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Ntt => "NTT",
            Kernel::Rotate => "Rotate",
            Kernel::Mult => "Mult",
            Kernel::Add => "Add",
        }
    }
}

/// Result of the limit study.
#[derive(Debug, Clone)]
pub struct LimitStudy {
    /// Final power-of-two speedup factor per kernel
    /// `(NTT, Rotate, Mult, Add)`.
    pub factors: [(Kernel, u64); 4],
    /// Latency after each doubling step `(kernel, factor, total_latency_s)`
    /// — the Fig. 7(b) curve.
    pub trajectory: Vec<(Kernel, u64, f64)>,
    /// Latency after all factors are applied.
    pub final_latency_s: f64,
    /// The target that was requested.
    pub target_s: f64,
}

impl LimitStudy {
    /// The factor assigned to a kernel.
    pub fn factor(&self, k: Kernel) -> u64 {
        self.factors
            .iter()
            .find(|(kernel, _)| *kernel == k)
            .map(|(_, f)| *f)
            .expect("all four kernels present")
    }
}

/// Runs the greedy successive-doubling limit study.
///
/// `other` time is assumed to scale with the most-accelerated kernel (it
/// is construction/destruction attached to the same operators).
///
/// # Panics
///
/// Panics if `target_s <= 0`.
pub fn limit_study(breakdown: &Breakdown, target_s: f64) -> LimitStudy {
    assert!(target_s > 0.0, "target latency must be positive");
    let base = [
        (Kernel::Ntt, breakdown.ntt_s),
        (Kernel::Rotate, breakdown.rotate_s),
        (Kernel::Mult, breakdown.mult_s),
        (Kernel::Add, breakdown.add_s),
    ];
    let mut factors: [(Kernel, u64); 4] = [
        (Kernel::Ntt, 1),
        (Kernel::Rotate, 1),
        (Kernel::Mult, 1),
        (Kernel::Add, 1),
    ];
    let mut trajectory = Vec::new();

    let total = |factors: &[(Kernel, u64); 4]| -> f64 {
        let mut t = 0.0;
        let mut max_factor = 1u64;
        for ((_, time), (_, f)) in base.iter().zip(factors.iter()) {
            t += time / *f as f64;
            max_factor = max_factor.max(*f);
        }
        // "Other" shrinks with the overall acceleration (same operators).
        t + breakdown.other_s / max_factor as f64
    };

    let mut latency = total(&factors);
    let max_steps = 400; // safety bound: 4 kernels x up to 2^100 would be absurd
    let mut steps = 0;
    while latency > target_s && steps < max_steps {
        // Double the kernel currently dominating the residual runtime.
        let (idx, _) = base
            .iter()
            .enumerate()
            .map(|(i, (_, time))| (i, time / factors[i].1 as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        factors[idx].1 *= 2;
        latency = total(&factors);
        trajectory.push((factors[idx].0, factors[idx].1, latency));
        steps += 1;
    }
    LimitStudy {
        factors,
        trajectory,
        final_latency_s: latency,
        target_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's measured ResNet50 shares on a 970 s run.
    #[allow(clippy::approx_constant)] // 0.318 is the paper's 31.8 %, not 1/π
    fn paper_breakdown() -> Breakdown {
        Breakdown {
            ntt_s: 970.0 * 0.552,
            rotate_s: 970.0 * 0.318,
            mult_s: 970.0 * 0.103,
            add_s: 970.0 * 0.022,
            other_s: 970.0 * 0.005,
        }
    }

    #[test]
    fn reproduces_paper_factor_ordering() {
        // Fig. 7(b): NTT 16384x, Rotate 8192x, Mult 4096x, Add 4096x. The
        // paper's exact per-kernel stopping rule is not fully specified;
        // the substantive claims we pin are the NTT headline factor, the
        // ordering NTT >= Rotate >= Mult, and reaching the 100 ms target.
        let study = limit_study(&paper_breakdown(), 0.1);
        assert!(study.final_latency_s <= 0.1);
        let ntt = study.factor(Kernel::Ntt);
        let rot = study.factor(Kernel::Rotate);
        let mult = study.factor(Kernel::Mult);
        assert!(ntt >= rot, "NTT {ntt} >= Rotate {rot}");
        assert!(rot >= mult, "Rotate {rot} >= Mult {mult}");
        assert_eq!(ntt, 16384, "headline NTT factor");
        assert!(
            (8192..=16384).contains(&rot),
            "Rotate factor {rot} should be within 2x of the paper's 8192"
        );
        assert!(
            (2048..=8192).contains(&mult),
            "Mult factor {mult} should be within 2x of the paper's 4096"
        );
    }

    #[test]
    fn four_orders_of_magnitude_needed() {
        // §VI: HE inference is 3-4 orders of magnitude from plaintext even
        // after the algorithmic optimizations.
        let study = limit_study(&paper_breakdown(), 0.1);
        let max = study.factors.iter().map(|(_, f)| *f).max().unwrap();
        assert!(max >= 8192);
    }

    #[test]
    fn trajectory_is_monotonically_decreasing() {
        let study = limit_study(&paper_breakdown(), 0.1);
        for w in study.trajectory.windows(2) {
            assert!(w[1].2 <= w[0].2 + 1e-12);
        }
    }

    #[test]
    fn already_fast_needs_no_factors() {
        let b = Breakdown {
            ntt_s: 0.01,
            rotate_s: 0.01,
            mult_s: 0.01,
            add_s: 0.01,
            other_s: 0.0,
        };
        let study = limit_study(&b, 1.0);
        assert!(study.trajectory.is_empty());
        assert!(study.factors.iter().all(|(_, f)| *f == 1));
    }
}
