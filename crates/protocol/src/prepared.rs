//! Shared, immutable prepared state of a private-inference model.
//!
//! Preparing a network for homomorphic evaluation is expensive: every
//! linear layer's weights are packed into prepared plaintexts, BSGS /
//! reduce plans are chosen, and the union of rotation steps the plans
//! need is computed. None of that depends on a client — so it is built
//! **once** into a [`PreparedLayers`] and shared (behind an
//! `Arc<PreparedLayers>`) across every concurrent session the serving
//! layer runs. Everything here is read-only after construction: the
//! struct owns no `RefCell`/`Mutex` and every method takes `&self`, so
//! sharing is lock-free by construction.
//!
//! What stays *per client* lives in
//! [`crate::session::PrivateInferenceSession`] (and in `cheetah-serve`'s
//! session halves): secret/Galois keys, encryptors, mask RNG streams,
//! scratch space, and transcripts.

use cheetah_bfv::{
    BatchEncoder, BfvParams, Ciphertext, Error, Evaluator, GaloisKeys, NoiseEstimate, Plaintext,
    Result,
};
use cheetah_core::linear::{HomConv2d, HomFc};
use cheetah_core::ptune::ChainPlan;
use cheetah_core::Schedule;
use cheetah_nn::tensor::{max_pool, relu, sum_pool};
use cheetah_nn::{Layer, LinearLayer, Network, Tensor, Weights};

/// Worst-case budget (bits) the leveled-evaluation planner keeps in hand
/// when choosing how many limbs to drop before a layer.
const LEVEL_PLAN_MARGIN_BITS: f64 = 2.0;

/// A prepared homomorphic linear layer plus its packing rules.
pub(crate) enum HomLayer {
    Conv(HomConv2d),
    Fc(HomFc),
}

impl HomLayer {
    /// Rotation steps this prepared layer needs Galois keys for. Both
    /// layer kinds report their *instance* plan steps — live conv taps
    /// plus the chosen channel reduces, and the exact FC BSGS / sparse /
    /// diagonal plan — so a session generates keys only for rotations the
    /// prepared weights actually perform. A 90%-sparse layer's keygen
    /// shrinks with its plan; an all-zero layer needs no keys at all.
    fn rotation_steps(&self) -> Vec<i64> {
        match self {
            HomLayer::Conv(c) => c.rotation_steps(),
            HomLayer::Fc(f) => f.rotation_steps(),
        }
    }

    /// Human-readable rotation-plan label for transcripts and reports.
    fn plan_label(&self) -> String {
        match self {
            HomLayer::Conv(c) => {
                if c.structure().fully_live() {
                    format!("conv reduce {:?}", c.reduce_plan())
                } else {
                    format!(
                        "conv sparse live={}/{} reduce {:?}",
                        c.structure().live_taps(),
                        c.spec().co * c.spec().ci * c.spec().fw * c.spec().fw,
                        c.reduce_plan()
                    )
                }
            }
            HomLayer::Fc(f) => match (f.plan(), f.sparse_plan()) {
                (Some(p), _) => format!("fc bsgs b={} g={}", p.b, p.g),
                (None, Some(p)) => format!("fc sparse b={} g={} rot={}", p.b, p.g, p.rotations()),
                (None, None) => "fc diag".to_string(),
            },
        }
    }

    /// Table-III prediction of the layer's output noise at a level
    /// (conservative; upper-bounds the engine-tracked estimate).
    fn noise_after(
        &self,
        input: &NoiseEstimate,
        params: &BfvParams,
        level: usize,
    ) -> NoiseEstimate {
        match self {
            HomLayer::Conv(c) => c.noise_after(input, params, level),
            HomLayer::Fc(f) => f.noise_after(input, params, level),
        }
    }

    /// The deepest level this layer can run at for an input with the
    /// given noise estimate: walks the modulus-switch transitions down
    /// the chain and keeps the deepest level whose *predicted output*
    /// still clears the planning margin under the **statistical** (IBDG)
    /// budget — the §IV-B provisioning rule HE-PTune uses (failure
    /// probability below 1e-10). The worst-case bound would pin BSGS FC
    /// layers at full level: their baby steps are rotate-then-multiply, so
    /// the Table-III bound pays the key-switch additive inside the
    /// multiplication even though the measured noise sits far below it.
    /// Returns 0 (full chain) when no switch is safe — dropping limbs is
    /// purely an optimization, never a correctness requirement.
    fn plan_level(&self, input: &NoiseEstimate, params: &BfvParams) -> usize {
        let mut best = 0;
        let mut est = *input;
        for level in 0..params.levels() {
            if level > 0 {
                est = est.mod_switch(params, level - 1);
            }
            let out = self.noise_after(&est, params, level);
            if out.budget_bits_statistical_at(params, level) >= LEVEL_PLAN_MARGIN_BITS {
                best = level;
            }
        }
        best
    }

    fn pack(&self, t: &Tensor, encoder: &BatchEncoder) -> Result<Plaintext> {
        match self {
            HomLayer::Conv(c) => HomConv2d::encode_input(c.spec(), t, encoder),
            HomLayer::Fc(f) => HomFc::encode_input(f.spec(), t, encoder),
        }
    }

    fn apply(
        &self,
        ct: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>> {
        match self {
            HomLayer::Conv(c) => c.apply(ct, eval, keys),
            HomLayer::Fc(f) => Ok(vec![f.apply(ct, eval, keys)?]),
        }
    }

    /// Output tensor shape.
    fn output_shape(&self) -> Vec<usize> {
        match self {
            HomLayer::Conv(c) => vec![c.spec().co, c.spec().w, c.spec().w],
            HomLayer::Fc(f) => vec![f.spec().no],
        }
    }

    /// Extracts the output tensor from per-ciphertext decoded slots.
    fn unpack(&self, slot_vecs: &[Vec<i64>]) -> Tensor {
        match self {
            HomLayer::Conv(c) => {
                let w = c.spec().w;
                let mut data = Vec::with_capacity(c.spec().co * w * w);
                for slots in slot_vecs {
                    data.extend_from_slice(&slots[..w * w]);
                }
                Tensor::from_data(&[c.spec().co, w, w], data)
            }
            HomLayer::Fc(f) => {
                Tensor::from_data(&[f.spec().no], slot_vecs[0][..f.spec().no].to_vec())
            }
        }
    }

    /// Packs a mask tensor to match the *output* slot layout, one plaintext
    /// per output ciphertext.
    fn pack_output_mask(&self, mask: &Tensor, encoder: &BatchEncoder) -> Result<Vec<Plaintext>> {
        match self {
            HomLayer::Conv(c) => {
                let w2 = c.spec().w * c.spec().w;
                (0..c.spec().co)
                    .map(|o| encoder.encode_signed(&mask.data()[o * w2..(o + 1) * w2]))
                    .collect()
            }
            HomLayer::Fc(_) => Ok(vec![encoder.encode_signed(mask.data())?]),
        }
    }
}

/// Applies one nonlinear bundle (the simulated garbled-circuit body) to a
/// tensor. Linear layers never appear inside a bundle by construction;
/// the boundary still refuses rather than panicking.
fn apply_nonlinear(layers: &[Layer], input: &Tensor) -> Result<Tensor> {
    let mut t = input.clone();
    for layer in layers {
        t = match layer {
            Layer::Relu => relu(&t),
            Layer::MaxPool { k, stride } => max_pool(&t, *k, *stride),
            Layer::SumPool { k, stride } => sum_pool(&t, *k, *stride),
            Layer::Flatten => t.clone().into_flat(),
            Layer::ResidualAdd { .. } => {
                return Err(Error::Unsupported(
                    "residual networks need multi-branch sessions",
                ))
            }
            Layer::Linear(_) => {
                return Err(Error::Unsupported("linear layer inside a nonlinear bundle"))
            }
        };
    }
    Ok(t)
}

/// Everything about a model that is client-independent, prepared once:
/// packed weight plaintexts, BSGS/reduce/level plans, the nonlinear
/// bundle structure, and the union of rotation steps clients must bring
/// Galois keys for. Immutable after construction — share it behind an
/// `Arc` across any number of concurrent sessions.
pub struct PreparedLayers {
    net: Network,
    params: BfvParams,
    encoder: BatchEncoder,
    evaluator: Evaluator,
    layers: Vec<HomLayer>,
    /// Nonlinear layers *before* the first linear layer (run client-side
    /// in the clear — the client owns the input).
    leading: Vec<Layer>,
    /// Nonlinear bundle *after* each linear layer, up to the next linear
    /// layer (or the end of the network).
    bundles: Vec<Vec<Layer>>,
    /// Sorted, deduplicated union of every layer plan's rotation steps.
    steps: Vec<i64>,
    /// The parameter-chain fingerprint every client message must carry.
    fingerprint: u64,
    /// Solver-planned level per linear layer (HE-PTune v2's
    /// [`ChainPlan`]); the runtime level planner never goes *deeper* than
    /// this ceiling, so the engine's measured noise can only tighten the
    /// plan, never loosen it past what the chain solver provisioned.
    planned_levels: Option<Vec<usize>>,
}

impl PreparedLayers {
    /// Prepares every linear layer of `net` under the given schedule and
    /// splits the network into leading / per-layer nonlinear bundles.
    ///
    /// # Errors
    ///
    /// Propagates BFV errors; fails when a layer does not fit the packing
    /// constraints of [`HomConv2d`] / [`HomFc`].
    pub fn new(
        net: &Network,
        weights: &Weights,
        params: BfvParams,
        schedule: Schedule,
    ) -> Result<Self> {
        Self::new_with_levels(net, weights, params, schedule, None)
    }

    /// [`PreparedLayers::new`] with optional per-linear-layer planned
    /// levels: each layer's plan (BSGS width, reduce shape, sparse
    /// pruning) is then priced with the cost model *at its planned level*
    /// instead of level 0 — fewer live limbs make rotations relatively
    /// cheaper and can tip the plan choice.
    fn new_with_levels(
        net: &Network,
        weights: &Weights,
        params: BfvParams,
        schedule: Schedule,
        levels: Option<&[usize]>,
    ) -> Result<Self> {
        let encoder = BatchEncoder::new(params.clone());
        let evaluator = Evaluator::new(params.clone());

        // Prepare every linear layer, then collect exactly the rotation
        // steps the prepared layers' plans need (a BSGS FC layer needs
        // O(√d) keys, not d − 1; sparse layers only their live steps).
        let mut layers = Vec::new();
        let mut leading = Vec::new();
        let mut bundles: Vec<Vec<Layer>> = Vec::new();
        let mut linear_idx = 0usize;
        for layer in &net.layers {
            if let Layer::Linear(lin) = layer {
                let level = levels.map_or(0, |ls| ls[linear_idx]);
                match lin {
                    LinearLayer::Conv(c) => {
                        layers.push(HomLayer::Conv(HomConv2d::new_at_level(
                            c,
                            weights.layer(linear_idx),
                            &encoder,
                            &evaluator,
                            schedule,
                            level,
                        )?));
                    }
                    LinearLayer::Fc(f) => {
                        layers.push(HomLayer::Fc(HomFc::new_at_level(
                            f,
                            weights.layer(linear_idx),
                            &encoder,
                            &evaluator,
                            schedule,
                            level,
                        )?));
                    }
                }
                bundles.push(Vec::new());
                linear_idx += 1;
            } else if let Some(bundle) = bundles.last_mut() {
                bundle.push(layer.clone());
            } else {
                leading.push(layer.clone());
            }
        }
        let mut steps: Vec<i64> = layers.iter().flat_map(HomLayer::rotation_steps).collect();
        steps.sort_unstable();
        steps.dedup();
        let fingerprint = cheetah_bfv::chain_fingerprint(&params);

        Ok(Self {
            net: net.clone(),
            params,
            encoder,
            evaluator,
            layers,
            leading,
            bundles,
            steps,
            fingerprint,
            planned_levels: None,
        })
    }

    /// Prepares a network from a solver-produced [`ChainPlan`]: the plan's
    /// exact parameter chain (special prime included when the solver chose
    /// a hybrid chain) and schedule drive preparation, and its per-layer
    /// levels become ceilings for the runtime level planner — the
    /// HE-PTune v2 path from `solve_chain_plan` straight into a serving
    /// session.
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] when the plan's layer count does not match
    /// the network's linear layers; otherwise as [`PreparedLayers::new`].
    pub fn from_chain_plan(net: &Network, weights: &Weights, plan: &ChainPlan) -> Result<Self> {
        let linear_count = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Linear(_)))
            .count();
        if plan.layers.len() != linear_count {
            return Err(Error::Unsupported(
                "chain plan layer count does not match the network",
            ));
        }
        let levels = plan.levels();
        let mut prepared = Self::new_with_levels(
            net,
            weights,
            plan.params.clone(),
            plan.schedule,
            Some(&levels),
        )?;
        prepared.planned_levels = Some(levels);
        Ok(prepared)
    }

    /// The solver-planned per-layer levels, when this model was prepared
    /// via [`PreparedLayers::from_chain_plan`].
    pub fn planned_levels(&self) -> Option<&[usize]> {
        self.planned_levels.as_deref()
    }

    /// The network being served.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The parameter set every client must match (see
    /// [`PreparedLayers::fingerprint`]).
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The shared batch encoder.
    pub fn encoder(&self) -> &BatchEncoder {
        &self.encoder
    }

    /// The shared evaluator (stateless over `&self`; safe to use from any
    /// number of threads).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Number of prepared (linear) layers.
    pub fn linear_count(&self) -> usize {
        self.layers.len()
    }

    /// The exact rotation steps clients must bring Galois keys for —
    /// sorted and deduplicated across every layer plan.
    pub fn required_steps(&self) -> &[i64] {
        &self.steps
    }

    /// FNV-1a fingerprint of the parameter chain
    /// ([`cheetah_bfv::chain_fingerprint`]); every wire message from a
    /// client is validated against it before any arithmetic.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Checks that a client's Galois key set covers every step the
    /// prepared plans rotate by.
    ///
    /// # Errors
    ///
    /// [`Error::MissingGaloisKey`] naming the first uncovered step.
    pub fn check_key_coverage(&self, keys: &GaloisKeys) -> Result<()> {
        for &step in &self.steps {
            keys.get_for_step(self.params.degree(), step)?;
        }
        Ok(())
    }

    /// Runs the leading nonlinear layers (before the first linear layer)
    /// on a clear input — client-side work.
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] for residual networks.
    pub fn apply_leading(&self, input: &Tensor) -> Result<Tensor> {
        apply_nonlinear(&self.leading, input)
    }

    /// Runs linear layer `k`'s nonlinear bundle (the simulated garbled
    /// circuit body: ReLU / pooling / flatten until the next linear
    /// layer).
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] for residual networks.
    pub fn apply_bundle(&self, k: usize, input: &Tensor) -> Result<Tensor> {
        apply_nonlinear(&self.bundles[k], input)
    }

    /// Shape of linear layer `k`'s *bundle* output (what the next round's
    /// masks must cover), derived by a zero-tensor dry run — cheap, done
    /// once per server at prepare time.
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] for residual networks.
    pub fn bundle_output_shape(&self, k: usize) -> Result<Vec<usize>> {
        let zeros = Tensor::zeros(&self.output_shape(k));
        Ok(self.apply_bundle(k, &zeros)?.shape().to_vec())
    }

    /// Human-readable rotation-plan label of linear layer `k`.
    pub fn plan_label(&self, k: usize) -> String {
        self.layers[k].plan_label()
    }

    /// Number of ciphertexts linear layer `k` ships per masked download
    /// (conv layers send one per output channel, FC layers one) — what a
    /// client validates a download bundle's framing against.
    pub fn output_ciphertexts(&self, k: usize) -> usize {
        match &self.layers[k] {
            HomLayer::Conv(c) => c.spec().co,
            HomLayer::Fc(_) => 1,
        }
    }

    /// Output tensor shape of linear layer `k` (before its bundle).
    pub fn output_shape(&self, k: usize) -> Vec<usize> {
        self.layers[k].output_shape()
    }

    /// Packs a clear tensor into linear layer `k`'s input slot layout.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors for out-of-range values.
    pub fn pack(&self, k: usize, t: &Tensor) -> Result<Plaintext> {
        self.layers[k].pack(t, &self.encoder)
    }

    /// Table-III noise prediction of linear layer `k` at a level.
    pub fn noise_after(&self, k: usize, input: &NoiseEstimate, level: usize) -> NoiseEstimate {
        self.layers[k].noise_after(input, &self.params, level)
    }

    /// The deepest safe level for linear layer `k` given an input noise
    /// estimate (see the planner notes on the layer type). When the model
    /// was prepared from a [`ChainPlan`], the solver's planned level caps
    /// the answer: the runtime estimate may pull the layer shallower than
    /// planned but never deeper.
    pub fn plan_level(&self, k: usize, input: &NoiseEstimate) -> usize {
        let safe = self.layers[k].plan_level(input, &self.params);
        match &self.planned_levels {
            Some(levels) => safe.min(levels[k]),
            None => safe,
        }
    }

    /// Applies linear layer `k` homomorphically with a client's keys.
    ///
    /// # Errors
    ///
    /// Propagates BFV errors ([`Error::MissingGaloisKey`] when `keys` does
    /// not cover the plan, noise/parameter errors otherwise).
    pub fn apply(&self, k: usize, ct: &Ciphertext, keys: &GaloisKeys) -> Result<Vec<Ciphertext>> {
        self.layers[k].apply(ct, &self.evaluator, keys)
    }

    /// Extracts linear layer `k`'s output tensor from per-ciphertext
    /// decoded slots.
    pub fn unpack(&self, k: usize, slot_vecs: &[Vec<i64>]) -> Tensor {
        self.layers[k].unpack(slot_vecs)
    }

    /// Packs a mask tensor to linear layer `k`'s output slot layout, one
    /// plaintext per output ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn pack_output_mask(&self, k: usize, mask: &Tensor) -> Result<Vec<Plaintext>> {
        self.layers[k].pack_output_mask(mask, &self.encoder)
    }
}
