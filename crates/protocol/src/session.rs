//! The Gazelle-style private-inference session (§II-A of the Cheetah
//! paper): HE for linear layers on the cloud, a (simulated) garbled
//! circuit for nonlinearities on the client, additive masking to keep
//! activations hidden from the client and the model hidden from the cloud.
//!
//! Per linear layer `L` with previous-round mask `r_prev`:
//!
//! 1. client packs + encrypts its masked activation `a + r_prev`, sends it;
//! 2. cloud homomorphically subtracts `r_prev` (it knows the mask), applies
//!    `L` under HE, adds a fresh output mask `r`, sends `Enc(y + r)`;
//! 3. client decrypts `y + r`;
//! 4. the garbled circuit (simulated functionally) removes `r`, applies
//!    the nonlinear bundle (ReLU / pooling / flatten), and re-masks with
//!    the cloud's fresh input mask for the next round.
//!
//! The final linear output is returned unmasked to the client (it owns the
//! prediction). Decryption after every layer resets HE noise — the reason
//! the Gazelle structure avoids bootstrapping entirely (§II-A).
//!
//! The garbled circuit itself is a *functional* simulation: it computes
//! exactly what Yao evaluation would and its cost is accounted with a
//! half-gates size model, but no cryptographic garbling happens. Cheetah's
//! claims are all about the server-side HE compute, which here is real.

use cheetah_bfv::{
    wire, BatchEncoder, BfvParams, Ciphertext, Decryptor, Encryptor, Error, Evaluator, GaloisKeys,
    KeyGenerator, NoiseEstimate, Plaintext, Result, Scratch,
};
use cheetah_core::linear::{HomConv2d, HomFc};
use cheetah_core::Schedule;
use cheetah_nn::tensor::{max_pool, relu, sum_pool};
use cheetah_nn::{Layer, LinearLayer, Network, Tensor, Weights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::transcript::{garbled_circuit_bytes, Direction, Transcript};

/// Worst-case budget (bits) the leveled-evaluation planner keeps in hand
/// when choosing how many limbs to drop before a layer.
const LEVEL_PLAN_MARGIN_BITS: f64 = 2.0;

/// Measured-noise gate (bits) below which an incoming ciphertext is
/// rejected as [`Error::NoiseBudgetExhausted`]. The measurement is taken
/// against the *nearest* plaintext multiple, so truly-overflowed noise
/// collapses the budget to ≈ 0 while hovering slightly positive — a
/// strict-zero gate would wave garbage through (see
/// [`cheetah_bfv::Decryptor::invariant_noise_budget`]). The max of `n`
/// near-uniform residuals keeps garbage within ~0.001 bit of zero, while
/// healthy-but-marginal sessions measure well above half a bit, so half
/// a bit separates the two populations by orders of magnitude.
const MIN_DECRYPT_BUDGET_BITS: f64 = 0.5;

/// A prepared homomorphic linear layer plus its packing rules.
enum HomLayer {
    Conv(HomConv2d),
    Fc(HomFc),
}

impl HomLayer {
    /// Rotation steps this prepared layer needs Galois keys for. Conv
    /// layers use the static tap/stride superset (it already covers every
    /// reduce plan); FC layers report their exact BSGS (or diagonal) plan
    /// steps, so a BSGS session generates `O(√d)` keys per FC layer
    /// instead of `d − 1`.
    fn rotation_steps(&self) -> Vec<i64> {
        match self {
            HomLayer::Conv(c) => HomConv2d::required_steps(c.spec()),
            HomLayer::Fc(f) => f.rotation_steps(),
        }
    }

    /// Human-readable rotation-plan label for transcripts and reports.
    fn plan_label(&self) -> String {
        match self {
            HomLayer::Conv(c) => format!("conv reduce {:?}", c.reduce_plan()),
            HomLayer::Fc(f) => match f.plan() {
                Some(p) => format!("fc bsgs b={} g={}", p.b, p.g),
                None => "fc diag".to_string(),
            },
        }
    }

    /// Table-III prediction of the layer's output noise at a level
    /// (conservative; upper-bounds the engine-tracked estimate).
    fn noise_after(
        &self,
        input: &NoiseEstimate,
        params: &BfvParams,
        level: usize,
    ) -> NoiseEstimate {
        match self {
            HomLayer::Conv(c) => c.noise_after(input, params, level),
            HomLayer::Fc(f) => f.noise_after(input, params, level),
        }
    }

    /// The deepest level this layer can run at for an input with the
    /// given noise estimate: walks the modulus-switch transitions down
    /// the chain and keeps the deepest level whose *predicted output*
    /// still clears the planning margin under the **statistical** (IBDG)
    /// budget — the §IV-B provisioning rule HE-PTune uses (failure
    /// probability below 1e-10). The worst-case bound would pin BSGS FC
    /// layers at full level: their baby steps are rotate-then-multiply, so
    /// the Table-III bound pays the key-switch additive inside the
    /// multiplication even though the measured noise sits far below it.
    /// Returns 0 (full chain) when no switch is safe — dropping limbs is
    /// purely an optimization, never a correctness requirement.
    fn plan_level(&self, input: &NoiseEstimate, params: &BfvParams) -> usize {
        let mut best = 0;
        let mut est = *input;
        for level in 0..params.levels() {
            if level > 0 {
                est = est.mod_switch(params, level - 1);
            }
            let out = self.noise_after(&est, params, level);
            if out.budget_bits_statistical_at(params, level) >= LEVEL_PLAN_MARGIN_BITS {
                best = level;
            }
        }
        best
    }
    fn pack(&self, t: &Tensor, encoder: &BatchEncoder) -> Result<Plaintext> {
        match self {
            HomLayer::Conv(c) => HomConv2d::encode_input(c.spec(), t, encoder),
            HomLayer::Fc(f) => HomFc::encode_input(f.spec(), t, encoder),
        }
    }

    fn apply(
        &self,
        ct: &Ciphertext,
        eval: &Evaluator,
        keys: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>> {
        match self {
            HomLayer::Conv(c) => c.apply(ct, eval, keys),
            HomLayer::Fc(f) => Ok(vec![f.apply(ct, eval, keys)?]),
        }
    }

    /// Output tensor shape.
    fn output_shape(&self) -> Vec<usize> {
        match self {
            HomLayer::Conv(c) => vec![c.spec().co, c.spec().w, c.spec().w],
            HomLayer::Fc(f) => vec![f.spec().no],
        }
    }

    /// Extracts the output tensor from per-ciphertext decoded slots.
    fn unpack(&self, slot_vecs: &[Vec<i64>]) -> Tensor {
        match self {
            HomLayer::Conv(c) => {
                let w = c.spec().w;
                let mut data = Vec::with_capacity(c.spec().co * w * w);
                for slots in slot_vecs {
                    data.extend_from_slice(&slots[..w * w]);
                }
                Tensor::from_data(&[c.spec().co, w, w], data)
            }
            HomLayer::Fc(f) => {
                Tensor::from_data(&[f.spec().no], slot_vecs[0][..f.spec().no].to_vec())
            }
        }
    }

    /// Packs a mask tensor to match the *output* slot layout, one plaintext
    /// per output ciphertext.
    fn pack_output_mask(&self, mask: &Tensor, encoder: &BatchEncoder) -> Result<Vec<Plaintext>> {
        match self {
            HomLayer::Conv(c) => {
                let w2 = c.spec().w * c.spec().w;
                (0..c.spec().co)
                    .map(|o| encoder.encode_signed(&mask.data()[o * w2..(o + 1) * w2]))
                    .collect()
            }
            HomLayer::Fc(_) => Ok(vec![encoder.encode_signed(mask.data())?]),
        }
    }
}

/// Per-linear-layer record of the last [`PrivateInferenceSession::run`]:
/// the rotation plan, the level the layer ran at, and the three noise
/// views that must nest — `measured ≤ tracked ≤ predicted` — for the
/// whole-protocol conformance pin.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Linear-layer index.
    pub layer: usize,
    /// Rotation-plan label (`fc bsgs b=.. g=..`, `fc diag`,
    /// `conv reduce ..`).
    pub plan: String,
    /// Level the layer ran (and shipped) at.
    pub level: usize,
    /// The planning model's output bound
    /// (`noise_after` of the switched input), log2.
    pub predicted_bound_log2: f64,
    /// Worst engine-tracked noise bound across the layer's output
    /// ciphertexts (before masking), log2.
    pub tracked_bound_log2: f64,
    /// Worst *measured* invariant noise across the layer's output
    /// ciphertexts (before masking), log2. `None` unless
    /// [`PrivateInferenceSession::enable_noise_measurement`] was called —
    /// measuring costs one true decryption per output ciphertext, which
    /// does not belong on the production inference path.
    pub measured_noise_log2: Option<f64>,
    /// Why the session aborted at this point, when it did: the rendered
    /// typed error of a rejected wire message or an exhausted noise
    /// budget. `None` on the healthy path — a run that returns `Err` also
    /// leaves the fault here, so the caller can see *which* message or
    /// layer killed the session.
    pub fault: Option<String>,
}

/// End-to-end private inference for a small sequential network.
///
/// # Examples
///
/// See `examples/private_inference.rs` at the repository root.
pub struct PrivateInferenceSession {
    net: Network,
    params: BfvParams,
    encoder: BatchEncoder,
    evaluator: Evaluator,
    keys: GaloisKeys,
    encryptor: Encryptor,
    decryptor: Decryptor,
    hom_layers: Vec<HomLayer>,
    mask_rng: StdRng,
    /// Session-owned scratch pool backing the in-place evaluator calls of
    /// the protocol loop — steady-state rounds never touch the allocator
    /// for mask removal or re-masking.
    scratch: Scratch,
    /// Setup bytes (keys), recorded once.
    setup_bytes: usize,
    /// Per-layer plan/noise records of the last [`PrivateInferenceSession::run`].
    layer_reports: Vec<LayerReport>,
    /// Whether runs measure true invariant noise for the reports
    /// (conformance instrumentation; off by default).
    measure_noise: bool,
}

impl PrivateInferenceSession {
    /// Prepares a session: generates keys, prepares every linear layer
    /// under the given schedule.
    ///
    /// # Errors
    ///
    /// Propagates BFV errors; fails when a layer does not fit the packing
    /// constraints of [`HomConv2d`] / [`HomFc`].
    ///
    /// # Panics
    ///
    /// Panics on unsupported layer types (strided conv under HE).
    pub fn new(
        net: &Network,
        weights: &Weights,
        params: BfvParams,
        schedule: Schedule,
        seed: u64,
    ) -> Result<Self> {
        let mut keygen = KeyGenerator::from_seed(params.clone(), seed);
        let pk = keygen.public_key()?;
        let encoder = BatchEncoder::new(params.clone());
        let evaluator = Evaluator::new(params.clone());

        // Prepare every linear layer, then collect exactly the rotation
        // steps the prepared layers' plans need (a BSGS FC layer needs
        // O(√d) keys, not d − 1).
        let mut hom_layers = Vec::new();
        let mut linear_idx = 0usize;
        for layer in &net.layers {
            if let Layer::Linear(lin) = layer {
                match lin {
                    LinearLayer::Conv(c) => {
                        hom_layers.push(HomLayer::Conv(HomConv2d::new(
                            c,
                            weights.layer(linear_idx),
                            &encoder,
                            &evaluator,
                            schedule,
                        )?));
                    }
                    LinearLayer::Fc(f) => {
                        hom_layers.push(HomLayer::Fc(HomFc::new(
                            f,
                            weights.layer(linear_idx),
                            &encoder,
                            &evaluator,
                            schedule,
                        )?));
                    }
                }
                linear_idx += 1;
            }
        }
        let mut steps: Vec<i64> = hom_layers
            .iter()
            .flat_map(HomLayer::rotation_steps)
            .collect();
        steps.sort_unstable();
        steps.dedup();
        let keys = keygen.galois_keys_for_steps(&steps)?;
        // Keys plus the public key: all sized by the actual limb count.
        let setup_bytes = keys.byte_size(&params) + 2 * params.limbs() * params.degree() * 8;
        let scratch = evaluator.new_scratch();

        Ok(Self {
            net: net.clone(),
            encoder,
            evaluator,
            keys,
            encryptor: Encryptor::from_public_key(pk, seed ^ 0x5eed),
            decryptor: Decryptor::new(keygen.secret_key().clone()),
            hom_layers,
            mask_rng: StdRng::seed_from_u64(seed ^ 0xa5a5),
            scratch,
            params,
            setup_bytes,
            layer_reports: Vec::new(),
            measure_noise: false,
        })
    }

    /// Per-layer plan and noise records of the most recent
    /// [`PrivateInferenceSession::run`] (empty before the first run). The
    /// conformance suite asserts `measured ≤ tracked ≤ predicted` for
    /// every layer.
    pub fn layer_reports(&self) -> &[LayerReport] {
        &self.layer_reports
    }

    /// Makes subsequent runs measure each layer's true invariant noise
    /// into [`LayerReport::measured_noise_log2`]. This is conformance
    /// instrumentation — the session plays both protocol parties, so it
    /// *can* decrypt pre-mask outputs — and it costs one real decryption
    /// per output ciphertext per layer, so it stays off by default.
    pub fn enable_noise_measurement(&mut self) {
        self.measure_noise = true;
    }

    /// The session's parameter set.
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The session's Galois key set — exactly the `O(√d)` plan-required
    /// steps, nothing more (the fault harness probes unplanned steps
    /// against it).
    pub fn galois_keys(&self) -> &GaloisKeys {
        &self.keys
    }

    /// The session's evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Client-side decryption to signed slots, gated on the *measured*
    /// invariant noise budget — the check that makes semantically corrupt
    /// but structurally valid ciphertexts a typed
    /// [`Error::NoiseBudgetExhausted`] rather than silent garbage.
    ///
    /// # Errors
    ///
    /// [`Error::NoiseBudgetExhausted`] when the measured budget is gone;
    /// propagates BFV errors for mismatched parameters.
    pub fn decrypt_slots(&self, ct: &Ciphertext) -> Result<Vec<i64>> {
        if self.decryptor.invariant_noise_budget(ct)? < MIN_DECRYPT_BUDGET_BITS {
            return Err(Error::NoiseBudgetExhausted);
        }
        Ok(self.encoder.decode_signed(&self.decryptor.decrypt(ct)?))
    }

    /// Decodes and validates one incoming ciphertext message at the
    /// protocol boundary. A rejected message additionally leaves a
    /// fault-bearing [`LayerReport`] behind, so an aborted session says
    /// which message killed it.
    ///
    /// # Errors
    ///
    /// The wire layer's [`Error::Malformed`] / [`Error::ChainMismatch`] /
    /// [`Error::InvalidLevel`].
    pub fn decode_boundary(&mut self, label: &str, bytes: &[u8]) -> Result<Ciphertext> {
        Self::decode_at_boundary(&self.params, &mut self.layer_reports, label, bytes)
    }

    fn decode_at_boundary(
        params: &BfvParams,
        reports: &mut Vec<LayerReport>,
        label: &str,
        bytes: &[u8],
    ) -> Result<Ciphertext> {
        wire::decode_ciphertext(bytes, params).inspect_err(|e| {
            reports.push(LayerReport {
                layer: reports.len(),
                plan: label.to_string(),
                level: 0,
                predicted_bound_log2: f64::NAN,
                tracked_bound_log2: f64::NAN,
                measured_noise_log2: None,
                fault: Some(e.to_string()),
            });
        })
    }

    /// Runs a full private inference. Returns the prediction tensor and
    /// the communication transcript.
    ///
    /// # Errors
    ///
    /// Propagates BFV errors, including [`Error::NoiseBudgetExhausted`] if
    /// a layer overflows its noise budget.
    pub fn run(&mut self, input: &Tensor) -> Result<(Tensor, Transcript)> {
        self.layer_reports.clear();
        let mut transcript = Transcript::new();
        transcript.record(
            Direction::ClientToCloud,
            "setup: pk + galois keys",
            self.setup_bytes,
        );

        let t_mod = *self.params.plain_modulus();
        let half_t = (t_mod.value() / 2) as i64;
        let layers = self.net.layers.clone();

        // Client state: current (masked) activation. Cloud state: the mask.
        let mut client_act = input.clone();
        let mut cloud_mask: Option<Tensor> = None; // r_prev
        let mut linear_idx = 0usize;
        let mut li = 0usize;

        while li < layers.len() {
            match &layers[li] {
                Layer::Linear(_) => {
                    let hom = &self.hom_layers[linear_idx];
                    let is_last_linear = linear_idx + 1 == self.hom_layers.len();

                    // 1. Client: pack + encrypt the masked activation,
                    // then serialize — the cloud only ever sees wire
                    // bytes, never a live ciphertext.
                    let packed = hom.pack(&client_act, &self.encoder)?;
                    let ct_up = self.encryptor.encrypt(&packed)?;
                    let encoded = wire::encode_ciphertext(&ct_up);
                    check_wire_accounting("ciphertext", encoded.len(), ct_up.byte_size())?;
                    let label = format!("enc activations L{linear_idx}");
                    transcript.record_with_payload(
                        Direction::ClientToCloud,
                        label.clone(),
                        ct_up.byte_size(),
                        encoded.clone(),
                    );

                    // Cloud: decode + validate before any arithmetic. The
                    // wire layer attaches the fresh-encryption noise
                    // estimate — exactly right here: uploads *are* fresh.
                    let mut ct = Self::decode_at_boundary(
                        &self.params,
                        &mut self.layer_reports,
                        &label,
                        &encoded,
                    )?;

                    // 2. Cloud: remove its own previous mask homomorphically
                    // — in place, drawing the Δ·mask temporary from the
                    // session scratch pool.
                    if let Some(r) = &cloud_mask {
                        let neg: Vec<i64> = r.data().iter().map(|&v| -v).collect();
                        let neg_t = Tensor::from_data(r.shape(), neg);
                        let neg_packed = hom.pack(&neg_t, &self.encoder)?;
                        self.evaluator
                            .add_plain_assign(&mut ct, &neg_packed, &mut self.scratch)?;
                    }

                    // Cloud: drop the limbs this layer's noise no longer
                    // needs — the whole layer (rotations, multiplications,
                    // and the masked download below) then runs over the
                    // live limbs only. Multi-limb chains are *faster*
                    // mid-circuit, not just roomier.
                    let target = hom.plan_level(ct.noise(), &self.params);
                    if target > ct.level() {
                        self.evaluator.mod_switch_to_assign(&mut ct, target)?;
                    }

                    // Cloud: HE linear layer.
                    let predicted = hom.noise_after(ct.noise(), &self.params, ct.level());
                    let outputs = hom.apply(&ct, &self.evaluator, &self.keys)?;

                    // Conformance record. Tracked/predicted bounds are
                    // free; the *measured* invariant noise needs a real
                    // decryption per ciphertext, so it is only taken when
                    // instrumentation is enabled.
                    let mut tracked = f64::NEG_INFINITY;
                    let mut tracked_budget = f64::INFINITY;
                    let mut measured = None;
                    for out_ct in &outputs {
                        tracked = tracked.max(out_ct.noise().bound_log2);
                        tracked_budget = tracked_budget.min(
                            out_ct
                                .noise()
                                .budget_bits_statistical_at(&self.params, out_ct.level()),
                        );
                        if self.measure_noise {
                            let m = self.decryptor.invariant_noise(out_ct)?;
                            let m = (m.max(1) as f64).log2();
                            measured = Some(measured.map_or(m, |prev: f64| prev.max(m)));
                        }
                    }
                    self.layer_reports.push(LayerReport {
                        layer: linear_idx,
                        plan: hom.plan_label(),
                        level: ct.level(),
                        predicted_bound_log2: predicted.bound_log2,
                        tracked_bound_log2: tracked,
                        measured_noise_log2: measured,
                        fault: None,
                    });

                    // Guardrail: abort *before* shipping anything whose
                    // tracked estimate already spent the whole budget —
                    // the offending layer's report carries the fault.
                    if tracked_budget <= 0.0 {
                        if let Some(r) = self.layer_reports.last_mut() {
                            r.fault = Some(format!(
                                "tracked noise budget exhausted: \
                                 {tracked_budget:.1} bits left after layer {linear_idx}"
                            ));
                        }
                        return Err(Error::NoiseBudgetExhausted);
                    }

                    // Cloud: fresh output mask r (skipped on the final layer
                    // — the prediction belongs to the client).
                    let out_shape = hom.output_shape();
                    let out_len: usize = out_shape.iter().product();
                    let mask = if is_last_linear {
                        Tensor::zeros(&out_shape)
                    } else {
                        let data: Vec<i64> = (0..out_len)
                            .map(|_| self.mask_rng.random_range(-half_t..=half_t))
                            .collect();
                        Tensor::from_data(&out_shape, data)
                    };
                    let mask_pts = hom.pack_output_mask(&mask, &self.encoder)?;
                    let mut masked_cts = outputs;
                    for (out_ct, m_pt) in masked_cts.iter_mut().zip(&mask_pts) {
                        self.evaluator
                            .add_plain_assign(out_ct, m_pt, &mut self.scratch)?;
                    }
                    // Cloud: serialize the masked outputs. One transcript
                    // record per layer (the byte pin other suites rely
                    // on), its payload the back-to-back wire messages.
                    let dl_bytes: usize = masked_cts.iter().map(Ciphertext::byte_size).sum();
                    let out_level = masked_cts.first().map_or(0, Ciphertext::level);
                    let mut dl_payload = Vec::new();
                    for mct in &masked_cts {
                        let encoded = wire::encode_ciphertext(mct);
                        check_wire_accounting("ciphertext", encoded.len(), mct.byte_size())?;
                        dl_payload.extend_from_slice(&encoded);
                    }
                    let dl_label = format!("enc masked outputs L{linear_idx} lvl{out_level}");
                    transcript.record_with_payload(
                        Direction::CloudToClient,
                        dl_label.clone(),
                        dl_bytes,
                        dl_payload.clone(),
                    );

                    // 3. Client: split the bundle, validate each message,
                    // decrypt y + r (gated on the *measured* budget).
                    let parts = wire::split_ciphertext_messages(&dl_payload, &self.params)?;
                    if parts.len() != masked_cts.len() {
                        return Err(Error::Malformed {
                            what: "ciphertext bundle",
                            reason: format!(
                                "download framed {} messages where {} were sent",
                                parts.len(),
                                masked_cts.len()
                            ),
                        });
                    }
                    let mut slot_vecs = Vec::with_capacity(parts.len());
                    for part in parts {
                        let mct = Self::decode_at_boundary(
                            &self.params,
                            &mut self.layer_reports,
                            &dl_label,
                            part,
                        )?;
                        slot_vecs.push(self.decrypt_slots(&mct)?);
                    }
                    let masked_out = hom.unpack(&slot_vecs);

                    // 4. Garbled circuit bundle: unmask, run every nonlinear
                    // layer until the next linear one, re-mask.
                    let mut gc_in = sub_mod_t(&masked_out, &mask, t_mod.value());
                    let mut lj = li + 1;
                    while lj < layers.len() && !matches!(layers[lj], Layer::Linear(_)) {
                        gc_in = match &layers[lj] {
                            Layer::Relu => relu(&gc_in),
                            Layer::MaxPool { k, stride } => max_pool(&gc_in, *k, *stride),
                            Layer::SumPool { k, stride } => sum_pool(&gc_in, *k, *stride),
                            Layer::Flatten => gc_in.clone().into_flat(),
                            Layer::ResidualAdd { .. } => {
                                return Err(Error::Unsupported(
                                    "residual networks need multi-branch sessions",
                                ))
                            }
                            // Excluded by the loop condition; the boundary
                            // still refuses rather than panicking.
                            Layer::Linear(_) => {
                                return Err(Error::Unsupported(
                                    "linear layer inside a nonlinear bundle",
                                ))
                            }
                        };
                        lj += 1;
                    }
                    transcript.record(
                        Direction::CloudToClient,
                        format!("garbled circuit L{linear_idx}"),
                        garbled_circuit_bytes(out_len, t_mod.bits()),
                    );

                    if lj >= layers.len() || is_last_linear {
                        // Done: the GC output is the client's prediction.
                        return Ok((gc_in, transcript));
                    }

                    // Fresh client-side mask for the next round (chosen by
                    // the cloud inside the GC).
                    let next_len = gc_in.len();
                    let next_mask_data: Vec<i64> = (0..next_len)
                        .map(|_| self.mask_rng.random_range(-half_t..=half_t))
                        .collect();
                    let next_mask = Tensor::from_data(gc_in.shape(), next_mask_data);
                    client_act = add_mod_t(&gc_in, &next_mask, t_mod.value());
                    cloud_mask = Some(next_mask);
                    linear_idx += 1;
                    li = lj;
                }
                _ => {
                    // Leading nonlinear layers (before any linear layer) run
                    // on the client in the clear — it owns the input.
                    client_act = match &layers[li] {
                        Layer::Relu => relu(&client_act),
                        Layer::MaxPool { k, stride } => max_pool(&client_act, *k, *stride),
                        Layer::SumPool { k, stride } => sum_pool(&client_act, *k, *stride),
                        Layer::Flatten => client_act.clone().into_flat(),
                        Layer::ResidualAdd { .. } => {
                            return Err(Error::Unsupported(
                                "residual networks need multi-branch sessions",
                            ))
                        }
                        // Excluded by the enclosing match; refused, not
                        // panicked on.
                        Layer::Linear(_) => {
                            return Err(Error::Unsupported("unexpected linear layer"))
                        }
                    };
                    li += 1;
                }
            }
        }
        Ok((client_act, Transcript::new()))
    }
}

/// Cross-checks an encoded message against the transcript accounting
/// relation — a full wire message is exactly the accounted payload
/// (`2·live·n·8` for a ciphertext) plus the fixed header — before the
/// message ships.
fn check_wire_accounting(what: &'static str, encoded: usize, accounted: usize) -> Result<()> {
    if encoded != accounted + wire::HEADER_BYTES {
        return Err(Error::Malformed {
            what,
            reason: format!(
                "encoder produced {encoded} bytes where accounting expects {accounted} + {} header",
                wire::HEADER_BYTES
            ),
        });
    }
    Ok(())
}

/// `a - b` with wraparound mod `t`, re-centered. Exactly what the GC's
/// subtraction circuit computes on `t`-bit rings.
fn sub_mod_t(a: &Tensor, b: &Tensor, t: u64) -> Tensor {
    let t = t as i64;
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| center(x - y, t))
        .collect();
    Tensor::from_data(a.shape(), data)
}

/// `a + b` with wraparound mod `t`, re-centered.
fn add_mod_t(a: &Tensor, b: &Tensor, t: u64) -> Tensor {
    let t = t as i64;
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| center(x + y, t))
        .collect();
    Tensor::from_data(a.shape(), data)
}

fn center(v: i64, t: i64) -> i64 {
    let mut r = v.rem_euclid(t);
    if r > t / 2 {
        r -= t;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_nn::inference::{infer, random_input};
    use cheetah_nn::models::tiny_cnn;

    fn session_params() -> BfvParams {
        BfvParams::builder()
            .degree(4096)
            .plain_bits(18)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap()
    }

    /// Same degree/A as [`session_params`], but the 60-bit ciphertext
    /// modulus is a genuine 2-limb RNS chain of distinct 30-bit primes.
    /// `t` drops to 16 bits: 30-bit limbs cannot satisfy the Gazelle
    /// congruence, so the live `(Q mod t)` multiplication rounding term
    /// needs the extra headroom (tiny-CNN activations fit easily).
    fn session_params_2_limb() -> BfvParams {
        BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .moduli_bits(&[30, 30])
            .a_dcmp(1 << 6)
            .build()
            .unwrap()
    }

    #[test]
    fn tiny_cnn_private_inference_matches_plaintext() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 11);
        let input = random_input(&net.input_shape, 3, 12);
        let expect = infer(&net, &weights, &input).output;

        let mut session = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            77,
        )
        .unwrap();
        let (output, transcript) = session.run(&input).unwrap();
        assert_eq!(output.data(), expect.data(), "private != plaintext");
        assert!(transcript.total_bytes() > 0);
        assert_eq!(transcript.rounds(), 4); // setup + 3 linear layers
    }

    #[test]
    fn two_limb_chain_private_inference_matches_plaintext() {
        // The RNS migration acceptance path: encrypt → conv → decrypt end
        // to end through the session on a genuine 2-limb chain, with
        // transcript bytes reflecting the limb count.
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 51);
        let input = random_input(&net.input_shape, 3, 52);
        let expect = infer(&net, &weights, &input).output;

        let params = session_params_2_limb();
        assert_eq!(params.limbs(), 2);
        let mut session =
            PrivateInferenceSession::new(&net, &weights, params, Schedule::PartialAligned, 77)
                .unwrap();
        let (output, transcript) = session.run(&input).unwrap();
        assert_eq!(output.data(), expect.data(), "2-limb private != plaintext");

        // Every ciphertext message carries 2 limbs: activation uploads are
        // exactly twice the single-limb size (2 components · 2 limbs ·
        // n · 8 bytes), and the single-limb session's are half that.
        let mut single = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            77,
        )
        .unwrap();
        let (_, transcript_1) = single.run(&input).unwrap();
        let act_bytes = |t: &Transcript| -> Vec<usize> {
            t.messages()
                .iter()
                .filter(|m| m.label.contains("enc activations"))
                .map(|m| m.bytes)
                .collect()
        };
        let up2 = act_bytes(&transcript);
        let up1 = act_bytes(&transcript_1);
        assert_eq!(up2.len(), up1.len());
        for (b2, b1) in up2.iter().zip(&up1) {
            assert_eq!(*b2, 2 * b1, "2-limb upload must be twice 1-limb");
            assert_eq!(*b2, 2 * 2 * 4096 * 8);
        }
    }

    /// A 3-limb chain with the session's low decomposition base: deep
    /// enough that the planner can drop a limb before every layer.
    fn session_params_3_limb() -> BfvParams {
        BfvParams::builder()
            .degree(4096)
            .plain_bits(17)
            .moduli_bits(&[36, 36, 36])
            .a_dcmp(1 << 6)
            .build()
            .unwrap()
    }

    #[test]
    fn leveled_session_drops_limbs_and_matches_plaintext() {
        // The first feature where multi-limb chains are *faster*
        // mid-circuit rather than just roomier: a tiny CNN's noise never
        // needs the full 108-bit ceiling, so the cloud modulus-switches
        // each layer's input down and runs the layer — and ships the
        // masked outputs — over fewer live limbs.
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 71);
        let input = random_input(&net.input_shape, 3, 72);
        let expect = infer(&net, &weights, &input).output;

        let params = session_params_3_limb();
        assert_eq!(params.limbs(), 3);
        let mut session =
            PrivateInferenceSession::new(&net, &weights, params, Schedule::PartialAligned, 77)
                .unwrap();
        let (output, transcript) = session.run(&input).unwrap();
        assert_eq!(output.data(), expect.data(), "leveled private != plaintext");

        // Uploads stay full-level (the client always encrypts fresh)…
        for m in transcript
            .messages()
            .iter()
            .filter(|m| m.label.contains("enc activations"))
        {
            assert_eq!(m.bytes, 2 * 3 * 4096 * 8, "{}", m.label);
        }
        // …while every masked download left level 0: the layers ran — and
        // shipped — at a reduced level, each ciphertext a whole number of
        // live-limb pairs strictly below the full-level size.
        let downloads: Vec<_> = transcript
            .messages()
            .iter()
            .filter(|m| m.label.contains("enc masked outputs"))
            .collect();
        assert!(!downloads.is_empty());
        for m in &downloads {
            assert!(
                m.label.contains("lvl1") || m.label.contains("lvl2"),
                "layer stayed at full level: {}",
                m.label
            );
            // A whole number of live-limb ciphertexts (2 components ·
            // ≤2 live limbs · n · 8 bytes each).
            assert_eq!(m.bytes % (2 * 4096 * 8), 0);
        }
    }

    #[test]
    fn both_schedules_agree_end_to_end() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 21);
        let input = random_input(&net.input_shape, 3, 22);
        let mut pa = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            1,
        )
        .unwrap();
        let mut ia = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::InputAligned,
            2,
        )
        .unwrap();
        let (out_pa, _) = pa.run(&input).unwrap();
        let (out_ia, _) = ia.run(&input).unwrap();
        assert_eq!(out_pa.data(), out_ia.data());
    }

    #[test]
    fn transcript_grows_with_network_depth() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 31);
        let input = random_input(&net.input_shape, 3, 32);
        let mut session = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            3,
        )
        .unwrap();
        let (_, transcript) = session.run(&input).unwrap();
        // setup + (up, down, gc) per linear layer.
        assert!(transcript.messages().len() > 3 * 3);
        assert!(transcript.upload_bytes() > 0);
        assert!(transcript.download_bytes() > 0);
    }

    #[test]
    fn masking_keeps_intermediate_values_uniformish() {
        // The activation the client sees between layers is masked: with a
        // fresh uniform mask the masked values should not equal the true
        // activations (probability of collision across a whole tensor is
        // negligible).
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 41);
        let input = random_input(&net.input_shape, 3, 42);
        let trace = infer(&net, &weights, &input);
        // Run the protocol and capture the client's masked view indirectly:
        // the protocol is correct (previous test), and the mask rng is
        // seeded differently from the weights, so a sanity spot-check on
        // the final output sufficing here: outputs match but transcript
        // shows masked rounds happened.
        let mut session = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            99,
        )
        .unwrap();
        let (out, transcript) = session.run(&input).unwrap();
        assert_eq!(out.data(), trace.output.data());
        let gc_msgs = transcript
            .messages()
            .iter()
            .filter(|m| m.label.contains("garbled"))
            .count();
        assert_eq!(gc_msgs, 3);
    }
}
