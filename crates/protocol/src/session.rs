//! The Gazelle-style private-inference session (§II-A of the Cheetah
//! paper): HE for linear layers on the cloud, a (simulated) garbled
//! circuit for nonlinearities on the client, additive masking to keep
//! activations hidden from the client and the model hidden from the cloud.
//!
//! Per linear layer `L` with previous-round mask `r_prev`:
//!
//! 1. client packs + encrypts its masked activation `a + r_prev`, sends it;
//! 2. cloud homomorphically subtracts `r_prev` (it knows the mask), applies
//!    `L` under HE, adds a fresh output mask `r`, sends `Enc(y + r)`;
//! 3. client decrypts `y + r`;
//! 4. the garbled circuit (simulated functionally) removes `r`, applies
//!    the nonlinear bundle (ReLU / pooling / flatten), and re-masks with
//!    the cloud's fresh input mask for the next round.
//!
//! The final linear output is returned unmasked to the client (it owns the
//! prediction). Decryption after every layer resets HE noise — the reason
//! the Gazelle structure avoids bootstrapping entirely (§II-A).
//!
//! The garbled circuit itself is a *functional* simulation: it computes
//! exactly what Yao evaluation would and its cost is accounted with a
//! half-gates size model, but no cryptographic garbling happens. Cheetah's
//! claims are all about the server-side HE compute, which here is real.
//!
//! ## Shared prepared state
//!
//! Everything client-independent — packed weight plaintexts, BSGS /
//! reduce / level plans, the rotation-step union — lives in an immutable
//! [`PreparedLayers`] behind an `Arc`. [`PrivateInferenceSession::new`]
//! builds one privately; [`PrivateInferenceSession::with_prepared`]
//! attaches a fresh client (keys, encryptors, mask streams, scratch) to an
//! existing shared model, which is how `cheetah-serve` runs many
//! concurrent sessions against one preparation.
//!
//! ## Wire formats
//!
//! Uploads are *fresh* symmetric encryptions, so they ship in the seeded
//! wire format ([`cheetah_bfv::wire`] version 2): an 8-byte PRNG seed
//! regenerates `c1` and only `c0` travels, halving upload bytes to
//! `live·n·8 + 8`. Downloads have evaluated, non-seeded `c1` components
//! and stay in the full `2·live·n·8` version-1 format.

use std::sync::Arc;

use cheetah_bfv::{
    wire, BfvParams, Ciphertext, Decryptor, Encryptor, Error, Evaluator, GaloisKeys, KeyGenerator,
    Result, Scratch,
};
use cheetah_core::Schedule;
use cheetah_nn::{Network, Tensor, Weights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::masking::{add_mod_t, gated_decrypt_slots, sub_mod_t};
use crate::prepared::PreparedLayers;
use crate::transcript::{garbled_circuit_bytes, Direction, Transcript};

/// Per-linear-layer record of the last [`PrivateInferenceSession::run`]:
/// the rotation plan, the level the layer ran at, and the three noise
/// views that must nest — `measured ≤ tracked ≤ predicted` — for the
/// whole-protocol conformance pin.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Linear-layer index.
    pub layer: usize,
    /// Rotation-plan label (`fc bsgs b=.. g=..`, `fc diag`,
    /// `conv reduce ..`).
    pub plan: String,
    /// Level the layer ran (and shipped) at.
    pub level: usize,
    /// The planning model's output bound
    /// (`noise_after` of the switched input), log2.
    pub predicted_bound_log2: f64,
    /// Worst engine-tracked noise bound across the layer's output
    /// ciphertexts (before masking), log2.
    pub tracked_bound_log2: f64,
    /// Worst *measured* invariant noise across the layer's output
    /// ciphertexts (before masking), log2. `None` unless
    /// [`PrivateInferenceSession::enable_noise_measurement`] was called —
    /// measuring costs one true decryption per output ciphertext, which
    /// does not belong on the production inference path.
    pub measured_noise_log2: Option<f64>,
    /// Why the session aborted at this point, when it did: the rendered
    /// typed error of a rejected wire message or an exhausted noise
    /// budget. `None` on the healthy path — a run that returns `Err` also
    /// leaves the fault here, so the caller can see *which* message or
    /// layer killed the session.
    pub fault: Option<String>,
}

/// End-to-end private inference for a small sequential network: one
/// client's keys, encryptors, mask streams, and scratch attached to a
/// shared (or private) [`PreparedLayers`].
///
/// # Examples
///
/// See `examples/private_inference.rs` at the repository root.
pub struct PrivateInferenceSession {
    prepared: Arc<PreparedLayers>,
    keys: GaloisKeys,
    encryptor: Encryptor,
    decryptor: Decryptor,
    mask_rng: StdRng,
    /// Session-owned scratch pool backing the in-place evaluator calls of
    /// the protocol loop — steady-state rounds never touch the allocator
    /// for mask removal or re-masking.
    scratch: Scratch,
    /// Setup bytes (seeded pk + galois keys), recorded once.
    setup_bytes: usize,
    /// Per-layer plan/noise records of the last [`PrivateInferenceSession::run`].
    layer_reports: Vec<LayerReport>,
    /// Whether runs measure true invariant noise for the reports
    /// (conformance instrumentation; off by default).
    measure_noise: bool,
}

impl PrivateInferenceSession {
    /// Prepares a session: generates keys, prepares every linear layer
    /// under the given schedule.
    ///
    /// # Errors
    ///
    /// Propagates BFV errors; fails when a layer does not fit the packing
    /// constraints of `HomConv2d` / `HomFc`.
    pub fn new(
        net: &Network,
        weights: &Weights,
        params: BfvParams,
        schedule: Schedule,
        seed: u64,
    ) -> Result<Self> {
        let prepared = Arc::new(PreparedLayers::new(net, weights, params, schedule)?);
        Self::with_prepared(prepared, seed)
    }

    /// Attaches a fresh client (keys, encryptors, mask streams, scratch)
    /// to an already-prepared shared model — the multi-session entry
    /// point: prepare once, call this per client.
    ///
    /// # Errors
    ///
    /// Propagates BFV key-generation and wire errors.
    pub fn with_prepared(prepared: Arc<PreparedLayers>, seed: u64) -> Result<Self> {
        let params = prepared.params().clone();
        let mut keygen = KeyGenerator::from_seed(params.clone(), seed);
        // The public key ships seeded — (seed, pk0) instead of (pk0, pk1)
        // — like every other fresh encryption of this key holder.
        let (pk, pk_seed) = keygen.public_key_seeded()?;
        let pk_encoded = wire::encode_public_key_seeded(&pk, pk_seed)?;
        let keys = keygen.galois_keys_for_steps(prepared.required_steps())?;
        // Keys plus the seeded public key: all sized by the actual limb
        // count.
        let setup_bytes = keys.byte_size(&params) + (pk_encoded.len() - wire::HEADER_BYTES);
        let scratch = prepared.evaluator().new_scratch();

        Ok(Self {
            keys,
            // Uploads are fresh *symmetric* encryptions (c1 = a is pure
            // PRNG output), which is what makes them seed-compressible.
            encryptor: Encryptor::from_secret_key(keygen.secret_key().clone(), seed ^ 0x5eed),
            decryptor: Decryptor::new(keygen.secret_key().clone()),
            mask_rng: StdRng::seed_from_u64(seed ^ 0xa5a5),
            scratch,
            prepared,
            setup_bytes,
            layer_reports: Vec::new(),
            measure_noise: false,
        })
    }

    /// The shared prepared model this session runs against.
    pub fn prepared(&self) -> &Arc<PreparedLayers> {
        &self.prepared
    }

    /// Per-layer plan and noise records of the most recent
    /// [`PrivateInferenceSession::run`] (empty before the first run). The
    /// conformance suite asserts `measured ≤ tracked ≤ predicted` for
    /// every layer.
    pub fn layer_reports(&self) -> &[LayerReport] {
        &self.layer_reports
    }

    /// Makes subsequent runs measure each layer's true invariant noise
    /// into [`LayerReport::measured_noise_log2`]. This is conformance
    /// instrumentation — the session plays both protocol parties, so it
    /// *can* decrypt pre-mask outputs — and it costs one real decryption
    /// per output ciphertext per layer, so it stays off by default.
    pub fn enable_noise_measurement(&mut self) {
        self.measure_noise = true;
    }

    /// The session's parameter set.
    pub fn params(&self) -> &BfvParams {
        self.prepared.params()
    }

    /// The session's Galois key set — exactly the `O(√d)` plan-required
    /// steps, nothing more (the fault harness probes unplanned steps
    /// against it).
    pub fn galois_keys(&self) -> &GaloisKeys {
        &self.keys
    }

    /// The session's evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        self.prepared.evaluator()
    }

    /// Client-side decryption to signed slots, gated on the *measured*
    /// invariant noise budget — the check that makes semantically corrupt
    /// but structurally valid ciphertexts a typed
    /// [`Error::NoiseBudgetExhausted`] rather than silent garbage.
    ///
    /// # Errors
    ///
    /// [`Error::NoiseBudgetExhausted`] when the measured budget is gone;
    /// propagates BFV errors for mismatched parameters.
    pub fn decrypt_slots(&self, ct: &Ciphertext) -> Result<Vec<i64>> {
        gated_decrypt_slots(&self.decryptor, self.prepared.encoder(), ct)
    }

    /// Decodes and validates one incoming ciphertext message at the
    /// protocol boundary. A rejected message additionally leaves a
    /// fault-bearing [`LayerReport`] behind, so an aborted session says
    /// which message killed it.
    ///
    /// # Errors
    ///
    /// The wire layer's [`Error::Malformed`] / [`Error::ChainMismatch`] /
    /// [`Error::InvalidLevel`].
    pub fn decode_boundary(&mut self, label: &str, bytes: &[u8]) -> Result<Ciphertext> {
        Self::decode_at_boundary(
            self.prepared.params(),
            &mut self.layer_reports,
            label,
            bytes,
        )
    }

    fn decode_at_boundary(
        params: &BfvParams,
        reports: &mut Vec<LayerReport>,
        label: &str,
        bytes: &[u8],
    ) -> Result<Ciphertext> {
        wire::decode_ciphertext(bytes, params).inspect_err(|e| {
            reports.push(LayerReport {
                layer: reports.len(),
                plan: label.to_string(),
                level: 0,
                predicted_bound_log2: f64::NAN,
                tracked_bound_log2: f64::NAN,
                measured_noise_log2: None,
                fault: Some(e.to_string()),
            });
        })
    }

    /// Runs a full private inference. Returns the prediction tensor and
    /// the communication transcript.
    ///
    /// # Errors
    ///
    /// Propagates BFV errors, including [`Error::NoiseBudgetExhausted`] if
    /// a layer overflows its noise budget.
    pub fn run(&mut self, input: &Tensor) -> Result<(Tensor, Transcript)> {
        self.layer_reports.clear();
        let prepared = Arc::clone(&self.prepared);
        let params = prepared.params();
        let t_mod = *params.plain_modulus();
        let half_t = (t_mod.value() / 2) as i64;

        let mut transcript = Transcript::new();
        transcript.record(
            Direction::ClientToCloud,
            "setup: pk + galois keys",
            self.setup_bytes,
        );

        // Leading nonlinear layers (before any linear layer) run on the
        // client in the clear — it owns the input.
        let mut client_act = prepared.apply_leading(input)?;
        if prepared.linear_count() == 0 {
            return Ok((client_act, Transcript::new()));
        }

        // Client state: current (masked) activation. Cloud state: the mask.
        let mut cloud_mask: Option<Tensor> = None; // r_prev

        for k in 0..prepared.linear_count() {
            let is_last_linear = k + 1 == prepared.linear_count();

            // 1. Client: pack + encrypt the masked activation, then
            // serialize — the cloud only ever sees wire bytes, never a
            // live ciphertext. The encryption is fresh + symmetric, so it
            // ships seeded: (seed, c0), half the full-format payload.
            let packed = prepared.pack(k, &client_act)?;
            let (ct_up, up_seed) = self.encryptor.encrypt_seeded(&packed)?;
            let encoded = wire::encode_ciphertext_seeded(&ct_up, up_seed)?;
            let up_bytes = wire::SEED_BYTES + ct_up.byte_size() / 2;
            check_wire_accounting("ciphertext", encoded.len(), up_bytes)?;
            let label = format!("enc activations L{k}");
            transcript.record_with_payload(
                Direction::ClientToCloud,
                label.clone(),
                up_bytes,
                encoded.clone(),
            );

            // Cloud: decode + validate before any arithmetic — the seeded
            // decoder re-expands c1 from the seed and attaches the
            // fresh-encryption noise estimate (exactly right here:
            // uploads *are* fresh).
            let mut ct =
                Self::decode_at_boundary(params, &mut self.layer_reports, &label, &encoded)?;

            // 2. Cloud: remove its own previous mask homomorphically — in
            // place, drawing the Δ·mask temporary from the session
            // scratch pool.
            if let Some(r) = &cloud_mask {
                let neg: Vec<i64> = r.data().iter().map(|&v| -v).collect();
                let neg_t = Tensor::from_data(r.shape(), neg);
                let neg_packed = prepared.pack(k, &neg_t)?;
                prepared
                    .evaluator()
                    .add_plain_assign(&mut ct, &neg_packed, &mut self.scratch)?;
            }

            // Cloud: drop the limbs this layer's noise no longer needs —
            // the whole layer (rotations, multiplications, and the masked
            // download below) then runs over the live limbs only.
            // Multi-limb chains are *faster* mid-circuit, not just
            // roomier.
            let target = prepared.plan_level(k, ct.noise());
            if target > ct.level() {
                prepared.evaluator().mod_switch_to_assign(&mut ct, target)?;
            }

            // Cloud: HE linear layer.
            let predicted = prepared.noise_after(k, ct.noise(), ct.level());
            let outputs = prepared.apply(k, &ct, &self.keys)?;

            // Conformance record. Tracked/predicted bounds are free; the
            // *measured* invariant noise needs a real decryption per
            // ciphertext, so it is only taken when instrumentation is
            // enabled.
            let mut tracked = f64::NEG_INFINITY;
            let mut tracked_budget = f64::INFINITY;
            let mut measured = None;
            for out_ct in &outputs {
                tracked = tracked.max(out_ct.noise().bound_log2);
                tracked_budget = tracked_budget.min(
                    out_ct
                        .noise()
                        .budget_bits_statistical_at(params, out_ct.level()),
                );
                if self.measure_noise {
                    let m = self.decryptor.invariant_noise(out_ct)?;
                    let m = (m.max(1) as f64).log2();
                    measured = Some(measured.map_or(m, |prev: f64| prev.max(m)));
                }
            }
            self.layer_reports.push(LayerReport {
                layer: k,
                plan: prepared.plan_label(k),
                level: ct.level(),
                predicted_bound_log2: predicted.bound_log2,
                tracked_bound_log2: tracked,
                measured_noise_log2: measured,
                fault: None,
            });

            // Guardrail: abort *before* shipping anything whose tracked
            // estimate already spent the whole budget — the offending
            // layer's report carries the fault.
            if tracked_budget <= 0.0 {
                if let Some(r) = self.layer_reports.last_mut() {
                    r.fault = Some(format!(
                        "tracked noise budget exhausted: \
                         {tracked_budget:.1} bits left after layer {k}"
                    ));
                }
                return Err(Error::NoiseBudgetExhausted);
            }

            // Cloud: fresh output mask r (skipped on the final layer —
            // the prediction belongs to the client).
            let out_shape = prepared.output_shape(k);
            let out_len: usize = out_shape.iter().product();
            let mask = if is_last_linear {
                Tensor::zeros(&out_shape)
            } else {
                let data: Vec<i64> = (0..out_len)
                    .map(|_| self.mask_rng.random_range(-half_t..=half_t))
                    .collect();
                Tensor::from_data(&out_shape, data)
            };
            let mask_pts = prepared.pack_output_mask(k, &mask)?;
            let mut masked_cts = outputs;
            for (out_ct, m_pt) in masked_cts.iter_mut().zip(&mask_pts) {
                prepared
                    .evaluator()
                    .add_plain_assign(out_ct, m_pt, &mut self.scratch)?;
            }
            // Cloud: serialize the masked outputs. Downloads carry
            // evaluated c1 components, so they stay in the full v1
            // format. One transcript record per layer (the byte pin other
            // suites rely on), its payload the back-to-back wire
            // messages.
            let dl_bytes: usize = masked_cts.iter().map(Ciphertext::byte_size).sum();
            let out_level = masked_cts.first().map_or(0, Ciphertext::level);
            let mut dl_payload = Vec::new();
            for mct in &masked_cts {
                let encoded = wire::encode_ciphertext(mct);
                check_wire_accounting("ciphertext", encoded.len(), mct.byte_size())?;
                dl_payload.extend_from_slice(&encoded);
            }
            let dl_label = format!("enc masked outputs L{k} lvl{out_level}");
            transcript.record_with_payload(
                Direction::CloudToClient,
                dl_label.clone(),
                dl_bytes,
                dl_payload.clone(),
            );

            // 3. Client: split the bundle, validate each message, decrypt
            // y + r (gated on the *measured* budget).
            let parts = wire::split_ciphertext_messages(&dl_payload, params)?;
            if parts.len() != masked_cts.len() {
                return Err(Error::Malformed {
                    what: "ciphertext bundle",
                    reason: format!(
                        "download framed {} messages where {} were sent",
                        parts.len(),
                        masked_cts.len()
                    ),
                });
            }
            let mut slot_vecs = Vec::with_capacity(parts.len());
            for part in parts {
                let mct =
                    Self::decode_at_boundary(params, &mut self.layer_reports, &dl_label, part)?;
                slot_vecs.push(self.decrypt_slots(&mct)?);
            }
            let masked_out = prepared.unpack(k, &slot_vecs);

            // 4. Garbled circuit bundle: unmask, run every nonlinear
            // layer until the next linear one, re-mask.
            let gc_in = sub_mod_t(&masked_out, &mask, t_mod.value());
            let gc_out = prepared.apply_bundle(k, &gc_in)?;
            transcript.record(
                Direction::CloudToClient,
                format!("garbled circuit L{k}"),
                garbled_circuit_bytes(out_len, t_mod.bits()),
            );

            if is_last_linear {
                // Done: the GC output is the client's prediction.
                return Ok((gc_out, transcript));
            }

            // Fresh client-side mask for the next round (chosen by the
            // cloud inside the GC).
            let next_len = gc_out.len();
            let next_mask_data: Vec<i64> = (0..next_len)
                .map(|_| self.mask_rng.random_range(-half_t..=half_t))
                .collect();
            let next_mask = Tensor::from_data(gc_out.shape(), next_mask_data);
            client_act = add_mod_t(&gc_out, &next_mask, t_mod.value());
            cloud_mask = Some(next_mask);
        }
        // Unreachable: the loop returns at the last linear layer, and the
        // zero-linear case returned above. Kept total (panic-free).
        Ok((client_act, transcript))
    }
}

/// Cross-checks an encoded message against the transcript accounting
/// relation — a wire message is exactly the accounted payload
/// (`2·live·n·8` for a full ciphertext, `live·n·8 + 8` for a seeded one)
/// plus the fixed header — before the message ships.
fn check_wire_accounting(what: &'static str, encoded: usize, accounted: usize) -> Result<()> {
    if encoded != accounted + wire::HEADER_BYTES {
        return Err(Error::Malformed {
            what,
            reason: format!(
                "encoder produced {encoded} bytes where accounting expects {accounted} + {} header",
                wire::HEADER_BYTES
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheetah_nn::inference::{infer, random_input};
    use cheetah_nn::models::tiny_cnn;

    fn session_params() -> BfvParams {
        BfvParams::builder()
            .degree(4096)
            .plain_bits(18)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap()
    }

    /// Same degree/A as [`session_params`], but the 60-bit ciphertext
    /// modulus is a genuine 2-limb RNS chain of distinct 30-bit primes.
    /// `t` drops to 16 bits: 30-bit limbs cannot satisfy the Gazelle
    /// congruence, so the live `(Q mod t)` multiplication rounding term
    /// needs the extra headroom (tiny-CNN activations fit easily).
    fn session_params_2_limb() -> BfvParams {
        BfvParams::builder()
            .degree(4096)
            .plain_bits(16)
            .moduli_bits(&[30, 30])
            .a_dcmp(1 << 6)
            .build()
            .unwrap()
    }

    #[test]
    fn tiny_cnn_private_inference_matches_plaintext() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 11);
        let input = random_input(&net.input_shape, 3, 12);
        let expect = infer(&net, &weights, &input).output;

        let mut session = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            77,
        )
        .unwrap();
        let (output, transcript) = session.run(&input).unwrap();
        assert_eq!(output.data(), expect.data(), "private != plaintext");
        assert!(transcript.total_bytes() > 0);
        assert_eq!(transcript.rounds(), 4); // setup + 3 linear layers
    }

    #[test]
    fn two_limb_chain_private_inference_matches_plaintext() {
        // The RNS migration acceptance path: encrypt → conv → decrypt end
        // to end through the session on a genuine 2-limb chain, with
        // transcript bytes reflecting the limb count.
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 51);
        let input = random_input(&net.input_shape, 3, 52);
        let expect = infer(&net, &weights, &input).output;

        let params = session_params_2_limb();
        assert_eq!(params.limbs(), 2);
        let mut session =
            PrivateInferenceSession::new(&net, &weights, params, Schedule::PartialAligned, 77)
                .unwrap();
        let (output, transcript) = session.run(&input).unwrap();
        assert_eq!(output.data(), expect.data(), "2-limb private != plaintext");

        // Every upload ships seeded — seed + one c0 component of `limbs`
        // live limbs (`limbs·n·8 + 8` bytes): the 2-limb payload is twice
        // the single-limb payload net of the fixed seed.
        let mut single = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            77,
        )
        .unwrap();
        let (_, transcript_1) = single.run(&input).unwrap();
        let act_bytes = |t: &Transcript| -> Vec<usize> {
            t.messages()
                .iter()
                .filter(|m| m.label.contains("enc activations"))
                .map(|m| m.bytes)
                .collect()
        };
        let up2 = act_bytes(&transcript);
        let up1 = act_bytes(&transcript_1);
        assert_eq!(up2.len(), up1.len());
        for (b2, b1) in up2.iter().zip(&up1) {
            assert_eq!(
                *b2 - wire::SEED_BYTES,
                2 * (*b1 - wire::SEED_BYTES),
                "2-limb seeded upload payload must be twice 1-limb"
            );
            assert_eq!(*b2, wire::SEED_BYTES + 2 * 4096 * 8);
        }
    }

    /// A 3-limb chain with the session's low decomposition base: deep
    /// enough that the planner can drop a limb before every layer.
    fn session_params_3_limb() -> BfvParams {
        BfvParams::builder()
            .degree(4096)
            .plain_bits(17)
            .moduli_bits(&[36, 36, 36])
            .a_dcmp(1 << 6)
            .build()
            .unwrap()
    }

    #[test]
    fn leveled_session_drops_limbs_and_matches_plaintext() {
        // The first feature where multi-limb chains are *faster*
        // mid-circuit rather than just roomier: a tiny CNN's noise never
        // needs the full 108-bit ceiling, so the cloud modulus-switches
        // each layer's input down and runs the layer — and ships the
        // masked outputs — over fewer live limbs.
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 71);
        let input = random_input(&net.input_shape, 3, 72);
        let expect = infer(&net, &weights, &input).output;

        let params = session_params_3_limb();
        assert_eq!(params.limbs(), 3);
        let mut session =
            PrivateInferenceSession::new(&net, &weights, params, Schedule::PartialAligned, 77)
                .unwrap();
        let (output, transcript) = session.run(&input).unwrap();
        assert_eq!(output.data(), expect.data(), "leveled private != plaintext");

        // Uploads stay full-level (the client always encrypts fresh) and
        // seeded: one 3-limb c0 plus the 8-byte seed…
        for m in transcript
            .messages()
            .iter()
            .filter(|m| m.label.contains("enc activations"))
        {
            assert_eq!(m.bytes, wire::SEED_BYTES + 3 * 4096 * 8, "{}", m.label);
        }
        // …while every masked download left level 0: the layers ran — and
        // shipped — at a reduced level, each ciphertext a whole number of
        // live-limb pairs strictly below the full-level size.
        let downloads: Vec<_> = transcript
            .messages()
            .iter()
            .filter(|m| m.label.contains("enc masked outputs"))
            .collect();
        assert!(!downloads.is_empty());
        for m in &downloads {
            assert!(
                m.label.contains("lvl1") || m.label.contains("lvl2"),
                "layer stayed at full level: {}",
                m.label
            );
            // A whole number of live-limb ciphertexts (2 components ·
            // ≤2 live limbs · n · 8 bytes each).
            assert_eq!(m.bytes % (2 * 4096 * 8), 0);
        }
    }

    #[test]
    fn both_schedules_agree_end_to_end() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 21);
        let input = random_input(&net.input_shape, 3, 22);
        let mut pa = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            1,
        )
        .unwrap();
        let mut ia = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::InputAligned,
            2,
        )
        .unwrap();
        let (out_pa, _) = pa.run(&input).unwrap();
        let (out_ia, _) = ia.run(&input).unwrap();
        assert_eq!(out_pa.data(), out_ia.data());
    }

    #[test]
    fn sessions_sharing_one_prepared_model_match_private_preparations() {
        // The serve-layer contract: N clients attached to one shared
        // Arc<PreparedLayers> produce exactly the outputs and transcripts
        // they would with private preparations (preparation is
        // client-independent by construction).
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 61);
        let input = random_input(&net.input_shape, 3, 62);

        let shared = Arc::new(
            PreparedLayers::new(&net, &weights, session_params(), Schedule::PartialAligned)
                .unwrap(),
        );
        for seed in [5u64, 6, 7] {
            let mut shared_session =
                PrivateInferenceSession::with_prepared(Arc::clone(&shared), seed).unwrap();
            let mut private_session = PrivateInferenceSession::new(
                &net,
                &weights,
                session_params(),
                Schedule::PartialAligned,
                seed,
            )
            .unwrap();
            let (out_s, tr_s) = shared_session.run(&input).unwrap();
            let (out_p, tr_p) = private_session.run(&input).unwrap();
            assert_eq!(out_s.data(), out_p.data());
            let bytes = |t: &Transcript| t.messages().iter().map(|m| m.bytes).collect::<Vec<_>>();
            assert_eq!(bytes(&tr_s), bytes(&tr_p));
        }
    }

    #[test]
    fn transcript_grows_with_network_depth() {
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 31);
        let input = random_input(&net.input_shape, 3, 32);
        let mut session = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            3,
        )
        .unwrap();
        let (_, transcript) = session.run(&input).unwrap();
        // setup + (up, down, gc) per linear layer.
        assert!(transcript.messages().len() > 3 * 3);
        assert!(transcript.upload_bytes() > 0);
        assert!(transcript.download_bytes() > 0);
    }

    #[test]
    fn masking_keeps_intermediate_values_uniformish() {
        // The activation the client sees between layers is masked: with a
        // fresh uniform mask the masked values should not equal the true
        // activations (probability of collision across a whole tensor is
        // negligible).
        let net = tiny_cnn();
        let weights = Weights::random(&net, 2, 41);
        let input = random_input(&net.input_shape, 3, 42);
        let trace = infer(&net, &weights, &input);
        // Run the protocol and capture the client's masked view indirectly:
        // the protocol is correct (previous test), and the mask rng is
        // seeded differently from the weights, so a sanity spot-check on
        // the final output sufficing here: outputs match but transcript
        // shows masked rounds happened.
        let mut session = PrivateInferenceSession::new(
            &net,
            &weights,
            session_params(),
            Schedule::PartialAligned,
            99,
        )
        .unwrap();
        let (out, transcript) = session.run(&input).unwrap();
        assert_eq!(out.data(), trace.output.data());
        let gc_msgs = transcript
            .messages()
            .iter()
            .filter(|m| m.label.contains("garbled"))
            .count();
        assert_eq!(gc_msgs, 3);
    }
}
