//! # cheetah-protocol — Gazelle-style private inference
//!
//! The client/cloud protocol substrate the Cheetah paper builds on
//! (§II-A): linear layers run under BFV on the cloud, nonlinearities run
//! in a (functionally simulated) garbled circuit on the client, and
//! additive masks keep activations hidden from the client and the model
//! hidden from the cloud. Decryption between layers resets the HE noise
//! budget, which is why the hybrid structure needs no bootstrapping.
//!
//! The threat model matches Gazelle: both parties are honest but curious
//! (§II-B). As in the paper, layer counts and shapes leak to the client;
//! weight *values* do not.
//!
//! Although the parties are honest but curious, the *transport* is not
//! assumed reliable: every ciphertext and key crosses the boundary
//! through `cheetah_bfv::wire`'s validated encoding, and the
//! [`faults`] module provides the deterministic corruption harness that
//! pins the detected-or-harmless contract on recorded transcripts.

pub mod faults;
pub mod masking;
pub mod prepared;
pub mod session;
pub mod transcript;

pub use faults::{classify_ciphertext_fault, Corruption, FaultInjector, FaultOutcome};
pub use prepared::PreparedLayers;
pub use session::{LayerReport, PrivateInferenceSession};
pub use transcript::{Direction, Transcript};
