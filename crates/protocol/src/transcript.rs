//! Communication accounting for the private-inference protocol.
//!
//! Cheetah explicitly scopes itself to the server-side HE compute and
//! "assumes the same communication overheads as Gazelle" (§II-A). The
//! transcript records those overheads so the assumption is a measured
//! quantity rather than a hand wave.

use std::fmt;

/// Who sent a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → cloud.
    ClientToCloud,
    /// Cloud → client.
    CloudToClient,
}

/// One protocol message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender.
    pub direction: Direction,
    /// Short description (e.g. `"enc activations L3"`).
    pub label: String,
    /// Accounted payload size in bytes (wire framing excluded, so the
    /// `2·live·n·8` ciphertext pins stay limb-exact).
    pub bytes: usize,
    /// The actual encoded message, when the sender captured it
    /// (`cheetah_bfv::wire` format). Empty for size-only records; the
    /// fault-injection harness replays and corrupts these.
    pub payload: Vec<u8>,
}

/// A full protocol transcript.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    messages: Vec<Message>,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a size-only message (no captured payload).
    pub fn record(&mut self, direction: Direction, label: impl Into<String>, bytes: usize) {
        self.messages.push(Message {
            direction,
            label: label.into(),
            bytes,
            payload: Vec::new(),
        });
    }

    /// Records a message together with its encoded wire payload, keeping
    /// the accounted size (`bytes`) independent of the wire framing.
    pub fn record_with_payload(
        &mut self,
        direction: Direction,
        label: impl Into<String>,
        bytes: usize,
        payload: Vec<u8>,
    ) {
        self.messages.push(Message {
            direction,
            label: label.into(),
            bytes,
            payload,
        });
    }

    /// All messages in order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Total bytes sent client → cloud.
    pub fn upload_bytes(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.direction == Direction::ClientToCloud)
            .map(|m| m.bytes)
            .sum()
    }

    /// Total bytes sent cloud → client.
    pub fn download_bytes(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.direction == Direction::CloudToClient)
            .map(|m| m.bytes)
            .sum()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.upload_bytes() + self.download_bytes()
    }

    /// Number of protocol rounds (client→cloud messages).
    pub fn rounds(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.direction == Direction::ClientToCloud)
            .count()
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transcript: {} messages, {:.1} KiB up, {:.1} KiB down",
            self.messages.len(),
            self.upload_bytes() as f64 / 1024.0,
            self.download_bytes() as f64 / 1024.0
        )?;
        for m in &self.messages {
            let arrow = match m.direction {
                Direction::ClientToCloud => "->",
                Direction::CloudToClient => "<-",
            };
            writeln!(f, "  {arrow} {:<28} {:>10} B", m.label, m.bytes)?;
        }
        Ok(())
    }
}

/// Rough size model for a garbled circuit evaluating `values` numbers of
/// `bits` precision: ~2 AND gates per bit for compare/select, 32 bytes of
/// wire label material per gate (free-XOR, half-gates).
pub fn garbled_circuit_bytes(values: usize, bits: u32) -> usize {
    values * bits as usize * 2 * 32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_split_by_direction() {
        let mut t = Transcript::new();
        t.record(Direction::ClientToCloud, "a", 100);
        t.record(Direction::CloudToClient, "b", 40);
        t.record(Direction::ClientToCloud, "c", 10);
        assert_eq!(t.upload_bytes(), 110);
        assert_eq!(t.download_bytes(), 40);
        assert_eq!(t.total_bytes(), 150);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.messages().len(), 3);
        let rendered = t.to_string();
        assert!(rendered.contains("3 messages"));
        assert!(rendered.contains("->"));
    }

    #[test]
    fn gc_size_model() {
        assert_eq!(garbled_circuit_bytes(10, 16), 10 * 16 * 64);
    }
}
