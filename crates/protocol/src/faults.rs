//! Deterministic transcript fault injection.
//!
//! The wire layer's contract (`cheetah_bfv::wire`) is that every byte
//! crossing the protocol boundary is either *validated* before use or
//! provably irrelevant. This module is the adversary that contract is
//! tested against: a seedable [`FaultInjector`] that corrupts recorded
//! transcript messages through a fixed vocabulary of [`Corruption`]
//! classes, plus the [`classify_ciphertext_fault`] oracle that pins every
//! corruption to one of exactly two outcomes:
//!
//! * **Detected** — a typed error from wire decoding (structural faults:
//!   truncation, bad framing, foreign chains, non-canonical residues) or
//!   from the measured noise-budget gate at decryption (semantic faults:
//!   in-range bit flips, swapped components, consistent level lies — all
//!   of which turn into enormous invariant noise);
//! * **Harmless** — the decrypted slots are bit-identical to the clean
//!   run's (e.g. the header's reserved byte, ignored by design).
//!
//! [`FaultOutcome::SilentCorruption`] is the forbidden third outcome;
//! test suites assert it never occurs. All randomness flows from the
//! injector's seed, so any failing corruption is replayable.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use cheetah_bfv::wire::{
    self, HEADER_BYTES, OFF_FINGERPRINT, OFF_LEVEL, OFF_LIVE_LIMBS, OFF_RESERVED,
};
use cheetah_bfv::{BfvParams, Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::session::PrivateInferenceSession;

/// One corruption class. Every class is a pure function of the target
/// message and the session parameters — applying the same corruption to
/// the same bytes always produces the same mutant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// Flips bit `bit % 8` of byte `byte % len` — anywhere in the
    /// message: header, framing, or payload.
    BitFlip {
        /// Target byte (reduced modulo the message length).
        byte: usize,
        /// Target bit (reduced modulo 8).
        bit: u8,
    },
    /// Cuts the message down to its first `keep` bytes.
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// Appends `extra` filler bytes past the declared payload.
    Extend {
        /// Bytes to append.
        extra: usize,
    },
    /// Overwrites the header's level field. With `resize_payload`, also
    /// rewrites the live-limb field and resizes the payload so the lie is
    /// length-consistent — structurally valid, semantically fatal.
    LevelLie {
        /// The claimed level.
        level: u32,
        /// Whether to make the lie length-consistent.
        resize_payload: bool,
    },
    /// Rewrites the chain fingerprint to a foreign value.
    ForeignFingerprint,
    /// Writes a `>= q_i` word into limb plane `limb % live` of the first
    /// component.
    NonCanonicalResidue {
        /// Target limb plane (reduced modulo the live count).
        limb: usize,
    },
    /// Swaps the two component polynomials (`c0 ↔ c1`) — every residue
    /// stays canonical, only the semantics break.
    SwapComponents,
    /// Overwrites the header's reserved byte — the *designed harmless*
    /// target: decoders ignore it.
    ReservedByte {
        /// The value written.
        value: u8,
    },
}

impl Corruption {
    /// Short label for failure messages.
    pub fn label(&self) -> String {
        match self {
            Corruption::BitFlip { byte, bit } => format!("bitflip[{byte}.{bit}]"),
            Corruption::Truncate { keep } => format!("truncate[{keep}]"),
            Corruption::Extend { extra } => format!("extend[{extra}]"),
            Corruption::LevelLie {
                level,
                resize_payload,
            } => format!("level-lie[{level},resize={resize_payload}]"),
            Corruption::ForeignFingerprint => "foreign-fingerprint".to_string(),
            Corruption::NonCanonicalResidue { limb } => format!("non-canonical[{limb}]"),
            Corruption::SwapComponents => "swap-components".to_string(),
            Corruption::ReservedByte { value } => format!("reserved[{value:#04x}]"),
        }
    }
}

/// Seedable source of [`Corruption`]s and the machinery to apply them.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// A deterministic injector: the same seed replays the same faults.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a random corruption class sized for an `len`-byte message.
    pub fn random_corruption(&mut self, len: usize) -> Corruption {
        match self.rng.random_range(0..8u32) {
            0 => Corruption::BitFlip {
                byte: self.rng.random_range(0..len.max(1)),
                bit: self.rng.random_range(0..8u8),
            },
            1 => Corruption::Truncate {
                keep: self.rng.random_range(0..len.max(1)),
            },
            2 => Corruption::Extend {
                extra: self.rng.random_range(1..64usize),
            },
            3 => Corruption::LevelLie {
                level: self.rng.random_range(0..16u32),
                resize_payload: self.rng.random_range(0..2u32) == 1,
            },
            4 => Corruption::ForeignFingerprint,
            5 => Corruption::NonCanonicalResidue {
                limb: self.rng.random_range(0..8usize),
            },
            6 => Corruption::SwapComponents,
            _ => Corruption::ReservedByte {
                value: self.rng.random_range(0..=255u32) as u8,
            },
        }
    }

    /// Applies a corruption to an encoded wire message, returning the
    /// mutant. Deterministic: no randomness is consumed here. Corruptions
    /// that target fields a too-short message does not have degrade to
    /// the closest expressible mutation rather than panicking.
    ///
    /// Payload-relative classes ([`Corruption::NonCanonicalResidue`],
    /// [`Corruption::SwapComponents`], the length-consistent
    /// [`Corruption::LevelLie`]) read the header's kind byte to aim at
    /// the right offsets in both wire formats: full v1 payloads are
    /// `(c0, c1)`, seeded v2 payloads are `(seed, c0)` — there the
    /// residue planes start [`cheetah_bfv::SEED_BYTES`] later and the
    /// "components" swapped are the halves of `c0`.
    pub fn apply(message: &[u8], corruption: &Corruption, params: &BfvParams) -> Vec<u8> {
        let seeded = message.get(wire::OFF_KIND) == Some(&(wire::Kind::SeededCiphertext as u8));
        let mut out = message.to_vec();
        match corruption {
            Corruption::BitFlip { byte, bit } => {
                if !out.is_empty() {
                    let i = byte % out.len();
                    out[i] ^= 1 << (bit % 8);
                }
            }
            Corruption::Truncate { keep } => {
                out.truncate((*keep).min(out.len()));
            }
            Corruption::Extend { extra } => {
                let new_len = out.len() + extra;
                out.resize(new_len, 0x5a);
            }
            Corruption::LevelLie {
                level,
                resize_payload,
            } => {
                if out.len() >= HEADER_BYTES {
                    out[OFF_LEVEL..OFF_LEVEL + 4].copy_from_slice(&level.to_le_bytes());
                    let lvl = *level as usize;
                    if *resize_payload && lvl < params.levels() {
                        let live = params.live_limbs_at(lvl) as u32;
                        out[OFF_LIVE_LIMBS..OFF_LIVE_LIMBS + 4]
                            .copy_from_slice(&live.to_le_bytes());
                        // Zero filler keeps every residue canonical: on
                        // the full format the lie survives structural
                        // validation and must be caught by the noise gate
                        // instead. (Seeded messages have one fixed size
                        // and a level-0-only decoder, so there the lie is
                        // always structural.)
                        if !seeded {
                            out.resize(wire::ciphertext_wire_bytes(params, lvl), 0);
                        }
                    }
                }
            }
            Corruption::ForeignFingerprint => {
                if out.len() >= HEADER_BYTES {
                    for b in &mut out[OFF_FINGERPRINT..OFF_FINGERPRINT + 8] {
                        *b ^= 0xa5;
                    }
                }
            }
            Corruption::NonCanonicalResidue { limb } => {
                let planes_at = if seeded {
                    HEADER_BYTES + wire::SEED_BYTES
                } else {
                    HEADER_BYTES
                };
                if out.len() >= planes_at + 8 {
                    let n = params.degree();
                    let payload_words = (out.len() - planes_at) / 8;
                    let components = if seeded { 1 } else { 2 };
                    let live = (payload_words / components / n).max(1);
                    let plane = limb % live;
                    let at = planes_at + plane * n * 8;
                    if at + 8 <= out.len() {
                        // q < 2^62 everywhere in this engine, so MAX is
                        // never a canonical residue.
                        out[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                    }
                }
            }
            Corruption::SwapComponents => {
                // Full format: swap c0 and c1. Seeded format has a single
                // shipped polynomial, so the halves of c0 are swapped
                // instead (the seed is left intact) — residues stay in
                // range per-plane only by accident, so the mutant dies
                // either structurally or at the noise gate.
                let payload_at = if seeded {
                    HEADER_BYTES + wire::SEED_BYTES
                } else {
                    HEADER_BYTES
                };
                if out.len() > payload_at {
                    let payload = out.len() - payload_at;
                    let half = payload / 2;
                    let (a, b) = out.split_at_mut(payload_at + half);
                    let a = &mut a[payload_at..];
                    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                        std::mem::swap(x, y);
                    }
                }
            }
            Corruption::ReservedByte { value } => {
                if out.len() >= HEADER_BYTES {
                    out[OFF_RESERVED] = *value;
                }
            }
        }
        out
    }
}

/// The verdict on one injected fault. [`FaultOutcome::SilentCorruption`]
/// must never occur — suites assert its absence; the other two are the
/// only contractual outcomes.
#[derive(Debug)]
pub enum FaultOutcome {
    /// The corruption surfaced as a typed error — at wire decoding or at
    /// the measured noise-budget gate.
    Detected(Error),
    /// The mutant decodes and decrypts bit-identically to the clean
    /// message: the corrupted bytes were provably irrelevant.
    Harmless,
    /// The forbidden third outcome: the mutant decrypted *differently*
    /// without any error. A suite seeing this has found a real wire-layer
    /// hole.
    SilentCorruption,
}

/// Runs one corrupted ciphertext message through the full receive path —
/// wire validation, then measured-noise-gated decryption — and classifies
/// the outcome against the clean message's decryption.
///
/// # Errors
///
/// Errors only on harness misuse: a `clean` reference that itself fails
/// to decode or decrypt.
pub fn classify_ciphertext_fault(
    session: &PrivateInferenceSession,
    clean: &[u8],
    corrupted: &[u8],
) -> Result<FaultOutcome> {
    let reference = wire::decode_ciphertext(clean, session.params())?;
    let reference_slots = session.decrypt_slots(&reference)?;
    let ct = match wire::decode_ciphertext(corrupted, session.params()) {
        Err(e) => return Ok(FaultOutcome::Detected(e)),
        Ok(ct) => ct,
    };
    match session.decrypt_slots(&ct) {
        Err(e) => Ok(FaultOutcome::Detected(e)),
        Ok(slots) if slots == reference_slots => Ok(FaultOutcome::Harmless),
        Ok(_) => Ok(FaultOutcome::SilentCorruption),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_per_seed() {
        let mut a = FaultInjector::new(42);
        let mut b = FaultInjector::new(42);
        for _ in 0..32 {
            assert_eq!(a.random_corruption(1000), b.random_corruption(1000));
        }
        let mut c = FaultInjector::new(43);
        let draws_a: Vec<_> = (0..8).map(|_| a.random_corruption(1000)).collect();
        let draws_c: Vec<_> = (0..8).map(|_| c.random_corruption(1000)).collect();
        assert_ne!(draws_a, draws_c, "different seeds should diverge");
    }

    #[test]
    fn apply_never_panics_on_tiny_messages() {
        let params = BfvParams::preset_rns_2x30(4096).unwrap();
        let mut inj = FaultInjector::new(7);
        for len in [0usize, 1, 7, 23, 24, 31] {
            let msg = vec![0u8; len];
            for _ in 0..16 {
                let c = inj.random_corruption(len);
                let _ = FaultInjector::apply(&msg, &c, &params);
            }
        }
    }
}
