//! Client-side protocol arithmetic shared by the one-party
//! [`crate::session::PrivateInferenceSession`] and the concurrent serving
//! layer (`cheetah-serve`): the mod-`t` mask ring operations the simulated
//! garbled circuit computes, and the measured-noise decrypt gate every
//! client applies before trusting a download.

use cheetah_bfv::{BatchEncoder, Ciphertext, Decryptor, Error, Result};
use cheetah_nn::Tensor;

/// Measured-noise gate (bits) below which an incoming ciphertext is
/// rejected as [`Error::NoiseBudgetExhausted`]. The measurement is taken
/// against the *nearest* plaintext multiple, so truly-overflowed noise
/// collapses the budget to ≈ 0 while hovering slightly positive — a
/// strict-zero gate would wave garbage through (see
/// [`cheetah_bfv::Decryptor::invariant_noise_budget`]). The max of `n`
/// near-uniform residuals keeps garbage within ~0.001 bit of zero, while
/// healthy-but-marginal sessions measure well above half a bit, so half
/// a bit separates the two populations by orders of magnitude.
pub const MIN_DECRYPT_BUDGET_BITS: f64 = 0.5;

/// Decryption to signed slots, gated on the *measured* invariant noise
/// budget — the check that makes semantically corrupt but structurally
/// valid ciphertexts a typed [`Error::NoiseBudgetExhausted`] rather than
/// silent garbage.
///
/// # Errors
///
/// [`Error::NoiseBudgetExhausted`] when the measured budget is gone;
/// propagates BFV errors for mismatched parameters.
pub fn gated_decrypt_slots(
    decryptor: &Decryptor,
    encoder: &BatchEncoder,
    ct: &Ciphertext,
) -> Result<Vec<i64>> {
    if decryptor.invariant_noise_budget(ct)? < MIN_DECRYPT_BUDGET_BITS {
        return Err(Error::NoiseBudgetExhausted);
    }
    Ok(encoder.decode_signed(&decryptor.decrypt(ct)?))
}

/// `a - b` with wraparound mod `t`, re-centered. Exactly what the GC's
/// subtraction circuit computes on `t`-bit rings.
pub fn sub_mod_t(a: &Tensor, b: &Tensor, t: u64) -> Tensor {
    let t = t as i64;
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| center(x - y, t))
        .collect();
    Tensor::from_data(a.shape(), data)
}

/// `a + b` with wraparound mod `t`, re-centered.
pub fn add_mod_t(a: &Tensor, b: &Tensor, t: u64) -> Tensor {
    let t = t as i64;
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| center(x + y, t))
        .collect();
    Tensor::from_data(a.shape(), data)
}

/// Re-centers `v` into the symmetric interval around zero mod `t`.
pub fn center(v: i64, t: i64) -> i64 {
    let mut r = v.rem_euclid(t);
    if r > t / 2 {
        r -= t;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_ring_round_trips() {
        let t = 101u64;
        let a = Tensor::from_data(&[4], vec![3, -50, 47, 0]);
        let r = Tensor::from_data(&[4], vec![50, 50, -50, 1]);
        let masked = add_mod_t(&a, &r, t);
        let back = sub_mod_t(&masked, &r, t);
        assert_eq!(back.data(), a.data());
        for &v in masked.data() {
            assert!(v.abs() <= 50, "masked value {v} left the centered ring");
        }
    }

    #[test]
    fn center_is_symmetric() {
        assert_eq!(center(51, 101), -50);
        assert_eq!(center(-51, 101), 50);
        assert_eq!(center(101, 101), 0);
        assert_eq!(center(50, 101), 50);
    }
}
