//! End-to-end HE-PTune v2: a solver-produced [`ChainPlan`] drives a
//! tiny-CNN private-inference session.
//!
//! The chain solver sweeps {chain, per-layer level, rotation plan} over
//! the network and emits concrete parameters plus per-layer levels;
//! [`PreparedLayers::from_chain_plan`] turns that plan directly into a
//! servable model. These tests pin the whole path: the solved plan
//! prepares, runs, and decrypts bit-identically to the cleartext
//! reference, and the plan's levels genuinely cap the runtime level
//! planner.

use std::sync::Arc;

use cheetah_bfv::NoiseEstimate;
use cheetah_core::ptune::{solve_chain_plan, ChainPlan, NoiseRegime};
use cheetah_core::{QuantSpec, Schedule};
use cheetah_nn::inference::{infer, random_input};
use cheetah_nn::models::tiny_cnn;
use cheetah_nn::Weights;
use cheetah_protocol::{PreparedLayers, PrivateInferenceSession};

fn tiny_cnn_plan(schedule: Schedule) -> ChainPlan {
    // The engine guards every operation with its *worst-case* tracked
    // noise (NoiseBudgetExhausted), so a plan that must drive a live
    // session is solved in the worst-case regime; the statistical regime
    // is for the paper's provisioning studies.
    let net = tiny_cnn();
    let layers = net.linear_layers();
    solve_chain_plan(
        &layers,
        &QuantSpec::default(),
        schedule,
        NoiseRegime::WorstCase,
        &[4096],
    )
    .expect("tiny CNN must be solvable on the preset chains")
}

#[test]
fn solved_chain_plan_drives_a_session_end_to_end() {
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 811);
    let input = random_input(&net.input_shape, 3, 812);
    let expect = infer(&net, &weights, &input).output;

    let plan = tiny_cnn_plan(Schedule::PartialAligned);
    assert_eq!(plan.layers.len(), net.linear_layers().len());

    let prepared =
        Arc::new(PreparedLayers::from_chain_plan(&net, &weights, &plan).expect("prepare"));
    assert_eq!(
        prepared.planned_levels(),
        Some(plan.levels().as_slice()),
        "the solver's levels must reach the prepared model"
    );
    assert_eq!(prepared.params(), &plan.params);

    let mut session = PrivateInferenceSession::with_prepared(Arc::clone(&prepared), 77).unwrap();
    let (output, transcript) = session.run(&input).unwrap();
    assert_eq!(
        output.data(),
        expect.data(),
        "chain-plan session diverged from cleartext ({})",
        plan.name
    );
    assert!(transcript.total_bytes() > 0);
}

#[test]
fn solved_plans_agree_across_schedules() {
    // The two schedules solve to different chains (Sched-IA's input
    // additive pushes the solver onto a hybrid special-prime chain); the
    // decrypted outputs must still agree exactly — the plan changes cost,
    // never values.
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 821);
    let input = random_input(&net.input_shape, 3, 822);

    let mut outputs = Vec::new();
    for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
        let plan = tiny_cnn_plan(schedule);
        let prepared =
            Arc::new(PreparedLayers::from_chain_plan(&net, &weights, &plan).expect("prepare"));
        let mut session =
            PrivateInferenceSession::with_prepared(Arc::clone(&prepared), 31).unwrap();
        let (output, _) = session.run(&input).unwrap();
        outputs.push(output);
    }
    assert_eq!(outputs[0].data(), outputs[1].data());
}

#[test]
fn planned_levels_cap_the_runtime_level_planner() {
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 831);
    let plan = tiny_cnn_plan(Schedule::PartialAligned);

    let capped = PreparedLayers::from_chain_plan(&net, &weights, &plan).unwrap();
    let uncapped = PreparedLayers::new(
        &net,
        &weights,
        plan.params.clone(),
        Schedule::PartialAligned,
    )
    .unwrap();
    assert_eq!(uncapped.planned_levels(), None);

    let fresh = NoiseEstimate::fresh(&plan.params);
    for (k, &planned) in plan.levels().iter().enumerate() {
        let runtime = uncapped.plan_level(k, &fresh);
        let got = capped.plan_level(k, &fresh);
        assert!(
            got <= planned,
            "layer {k}: capped level {got} exceeds plan {planned}"
        );
        assert_eq!(
            got,
            runtime.min(planned),
            "layer {k}: cap must be min(runtime {runtime}, planned {planned})"
        );
    }
}

#[test]
fn mismatched_plan_is_rejected_at_prepare_time() {
    // A plan solved for a different network must not silently prepare.
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 841);
    let mut plan = tiny_cnn_plan(Schedule::PartialAligned);
    plan.layers.pop();
    let Err(err) = PreparedLayers::from_chain_plan(&net, &weights, &plan) else {
        panic!("a plan with the wrong layer count must be rejected");
    };
    assert!(
        format!("{err}").contains("chain plan"),
        "unexpected error: {err}"
    );
}
