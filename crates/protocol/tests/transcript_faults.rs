//! Transcript fault-injection suite: the detected-or-harmless contract,
//! pinned end to end on all three preset chains.
//!
//! A clean tiny-CNN private-inference session is recorded with real wire
//! payloads; every ciphertext message is then replayed through every
//! [`Corruption`] class (plus seeded random draws) and classified by
//! [`classify_ciphertext_fault`]:
//!
//! * structural faults (truncation, extension, bad framing, foreign
//!   fingerprints, non-canonical residues, inconsistent level lies) must
//!   die in wire validation with a typed error;
//! * semantic faults (in-range bit flips, swapped components, consistent
//!   level lies) must die at the measured noise-budget gate;
//! * the header's reserved byte must be provably harmless — bit-identical
//!   decryption.
//!
//! There is no third outcome, and nothing panics. The seed comes from
//! `FAULT_SEED` (defaulting to a fixed value) so CI failures replay.

use cheetah_bfv::wire;
use cheetah_bfv::{BfvParams, Error};
use cheetah_core::Schedule;
use cheetah_nn::inference::random_input;
use cheetah_nn::models::tiny_cnn;
use cheetah_nn::{Network, Weights};
use cheetah_protocol::faults::{
    classify_ciphertext_fault, Corruption, FaultInjector, FaultOutcome,
};
use cheetah_protocol::PrivateInferenceSession;

const N: usize = 4096;

fn fault_seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// The three preset chains with the session's decomposition base (as in
/// the root conformance suite).
fn preset_chains() -> Vec<(&'static str, BfvParams)> {
    let single_60 = BfvParams::builder()
        .degree(N)
        .plain_bits(18)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let rns_2x30 = BfvParams::builder()
        .degree(N)
        .plain_bits(16)
        .moduli_bits(&[30, 30])
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let rns_3x36 = BfvParams::builder()
        .degree(N)
        .plain_bits(17)
        .moduli_bits(&[36, 36, 36])
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    vec![
        ("single_60", single_60),
        ("rns_2x30", rns_2x30),
        ("rns_3x36", rns_3x36),
    ]
}

fn recorded_session(
    net: &Network,
    params: &BfvParams,
) -> (PrivateInferenceSession, Vec<(String, Vec<u8>)>) {
    let weights = Weights::random(net, 2, 611);
    let input = random_input(&net.input_shape, 3, 612);
    let mut session =
        PrivateInferenceSession::new(net, &weights, params.clone(), Schedule::PartialAligned, 77)
            .unwrap();
    let (_, transcript) = session.run(&input).unwrap();

    // Every recorded payload, split into individual wire messages (a
    // download bundle carries one message per output ciphertext).
    let mut messages = Vec::new();
    for m in transcript
        .messages()
        .iter()
        .filter(|m| !m.payload.is_empty())
    {
        for (i, part) in wire::split_ciphertext_messages(&m.payload, params)
            .unwrap()
            .iter()
            .enumerate()
        {
            messages.push((format!("{} #{i}", m.label), part.to_vec()));
        }
    }
    assert!(
        messages.len() >= 6,
        "expected uploads + downloads for 3 linear layers, got {}",
        messages.len()
    );
    (session, messages)
}

/// The fixed corruption battery run against every recorded message.
fn corruption_battery(params: &BfvParams, len: usize) -> Vec<Corruption> {
    let mut battery = vec![
        // Payload bit flips: structurally canonical, semantically fatal.
        Corruption::BitFlip {
            byte: wire::HEADER_BYTES + 5,
            bit: 0,
        },
        Corruption::BitFlip {
            byte: len.saturating_sub(3),
            bit: 6,
        },
        // Header bit flip (magic).
        Corruption::BitFlip { byte: 0, bit: 1 },
        // Truncation: inside the header and inside the payload.
        Corruption::Truncate { keep: 7 },
        Corruption::Truncate { keep: len / 2 },
        Corruption::Truncate { keep: 0 },
        // Extension past the declared payload.
        Corruption::Extend { extra: 1 },
        Corruption::Extend { extra: 64 },
        // Level lies: inconsistent (length check) and past-the-chain.
        Corruption::LevelLie {
            level: 7,
            resize_payload: false,
        },
        // Foreign chain fingerprint.
        Corruption::ForeignFingerprint,
        // Non-canonical residue in the first limb plane.
        Corruption::NonCanonicalResidue { limb: 0 },
        // Swapped c0/c1: canonical residues, dead ciphertext.
        Corruption::SwapComponents,
        // The designed-harmless target.
        Corruption::ReservedByte { value: 0xff },
    ];
    if params.levels() > 1 {
        // Length-consistent level lie: survives structural validation,
        // must die at the noise gate.
        battery.push(Corruption::LevelLie {
            level: 1,
            resize_payload: true,
        });
        battery.push(Corruption::NonCanonicalResidue { limb: 1 });
    }
    battery
}

fn run_fault_matrix(name: &str, params: BfvParams) {
    let net = tiny_cnn();
    let (session, messages) = recorded_session(&net, &params);
    let mut injector = FaultInjector::new(fault_seed());

    let mut detected = 0usize;
    let mut harmless = 0usize;
    for (label, clean) in &messages {
        let mut battery = corruption_battery(&params, clean.len());
        for _ in 0..4 {
            battery.push(injector.random_corruption(clean.len()));
        }
        for corruption in battery {
            let mutant = FaultInjector::apply(clean, &corruption, &params);
            if mutant == *clean {
                // e.g. a random ReservedByte draw that wrote the value
                // already present — nothing was corrupted.
                continue;
            }
            match classify_ciphertext_fault(&session, clean, &mutant).unwrap() {
                FaultOutcome::Detected(_) => detected += 1,
                FaultOutcome::Harmless => harmless += 1,
                FaultOutcome::SilentCorruption => panic!(
                    "{name}: SILENT CORRUPTION — {} on '{label}' decrypted \
                     differently without an error (seed {})",
                    corruption.label(),
                    fault_seed()
                ),
            }
        }
    }
    assert!(
        detected > 0 && harmless > 0,
        "{name}: fault matrix should exercise both outcomes \
         (detected {detected}, harmless {harmless})"
    );
}

#[test]
fn fault_matrix_single_60() {
    let (name, params) = preset_chains().swap_remove(0);
    run_fault_matrix(name, params);
}

#[test]
fn fault_matrix_rns_2x30() {
    let (name, params) = preset_chains().swap_remove(1);
    run_fault_matrix(name, params);
}

#[test]
fn fault_matrix_rns_3x36() {
    let (name, params) = preset_chains().swap_remove(2);
    run_fault_matrix(name, params);
}

/// Specific typed-error pins for each structural corruption class — the
/// matrix above proves the two-outcome contract; this proves each class
/// lands on the *right* error.
#[test]
fn corruption_classes_map_to_expected_errors() {
    let (_, params) = preset_chains().swap_remove(2);
    let net = tiny_cnn();
    let (session, messages) = recorded_session(&net, &params);
    let (_, clean) = &messages[0];

    let case = |c: Corruption| {
        let mutant = FaultInjector::apply(clean, &c, &params);
        wire::decode_ciphertext(&mutant, &params)
    };

    assert!(matches!(
        case(Corruption::Truncate { keep: 10 }),
        Err(Error::Malformed { .. })
    ));
    assert!(matches!(
        case(Corruption::Extend { extra: 8 }),
        Err(Error::Malformed { .. })
    ));
    assert!(matches!(
        case(Corruption::ForeignFingerprint),
        Err(Error::ChainMismatch { .. })
    ));
    assert!(matches!(
        case(Corruption::LevelLie {
            level: 9,
            resize_payload: false
        }),
        Err(Error::InvalidLevel { requested: 9, .. })
    ));
    assert!(matches!(
        case(Corruption::NonCanonicalResidue { limb: 0 }),
        Err(Error::Malformed { .. })
    ));

    // A length-consistent level lie reshuffles limb planes; it dies at
    // whichever layer sees it first — usually the canonical-residue check
    // (plane words land under a different prime), otherwise the noise
    // gate. Either way: detected, typed.
    let lie = FaultInjector::apply(
        clean,
        &Corruption::LevelLie {
            level: 1,
            resize_payload: true,
        },
        &params,
    );
    match wire::decode_ciphertext(&lie, &params) {
        Err(Error::Malformed { .. }) => {}
        Ok(ct) => assert!(
            matches!(session.decrypt_slots(&ct), Err(Error::NoiseBudgetExhausted)),
            "consistent level lie must die at the noise gate if it decodes"
        ),
        Err(other) => panic!("unexpected error class for the level lie: {other}"),
    }

    // Semantic classes decode fine but die at the noise gate. They are
    // pinned on a *download* message: uploads ship seeded with a single
    // c0 component, so swapping that component's halves crosses prime
    // planes and is (correctly) caught structurally instead — downloads
    // keep both components in the full format where the swap is exactly
    // c0 ↔ c1.
    let (_, dl_clean) = messages
        .iter()
        .find(|(label, _)| label.contains("enc masked outputs"))
        .expect("recorded session has download messages");
    for c in [
        Corruption::SwapComponents,
        Corruption::BitFlip {
            byte: wire::HEADER_BYTES + 11,
            bit: 2,
        },
    ] {
        let mutant = FaultInjector::apply(dl_clean, &c, &params);
        let ct = wire::decode_ciphertext(&mutant, &params)
            .unwrap_or_else(|e| panic!("{} should decode, got {e}", c.label()));
        assert!(
            matches!(session.decrypt_slots(&ct), Err(Error::NoiseBudgetExhausted)),
            "{} should exhaust the measured noise budget",
            c.label()
        );
    }

    // The reserved byte is the designed harmless flip.
    let mutant = FaultInjector::apply(clean, &Corruption::ReservedByte { value: 0x7b }, &params);
    assert_ne!(mutant, *clean);
    let a = wire::decode_ciphertext(clean, &params).unwrap();
    let b = wire::decode_ciphertext(&mutant, &params).unwrap();
    assert_eq!(
        session.decrypt_slots(&a).unwrap(),
        session.decrypt_slots(&b).unwrap()
    );
}

/// A rejected message leaves a fault-bearing [`LayerReport`] behind: an
/// aborted session says which message killed it.
#[test]
fn rejected_boundary_message_notes_the_fault() {
    let (_, params) = preset_chains().swap_remove(0);
    let net = tiny_cnn();
    let (mut session, messages) = recorded_session(&net, &params);
    let (_, clean) = &messages[0];

    let mutant = FaultInjector::apply(clean, &Corruption::ForeignFingerprint, &params);
    let before = session.layer_reports().len();
    let err = session
        .decode_boundary("enc activations L0", &mutant)
        .unwrap_err();
    assert!(matches!(err, Error::ChainMismatch { .. }));
    let reports = session.layer_reports();
    assert_eq!(reports.len(), before + 1);
    let fault = reports.last().unwrap().fault.as_deref().unwrap();
    assert!(
        fault.contains("foreign parameter chain"),
        "fault note should render the typed error: {fault}"
    );
}

/// The Galois key set is plan-exact (`O(√d)` keys); an unplanned rotation
/// step must be a typed [`Error::MissingGaloisKey`] naming the step —
/// never a silent identity or a panic.
#[test]
fn unplanned_rotation_step_is_a_typed_missing_key() {
    let (_, params) = preset_chains().swap_remove(0);
    let net = tiny_cnn();
    let (session, messages) = recorded_session(&net, &params);
    let ct = wire::decode_ciphertext(&messages[0].1, &params).unwrap();

    // The tiny-CNN plan covers a sparse step set; scan for one it missed.
    let mut hit = None;
    for step in 2..64i64 {
        match session
            .evaluator()
            .rotate_rows(&ct, step, session.galois_keys())
        {
            Err(Error::MissingGaloisKey { element, step: s }) => {
                assert_eq!(s, Some(step), "missing-key error must name the step");
                assert!(element % 2 == 1, "galois elements are odd");
                hit = Some(step);
                break;
            }
            Ok(_) | Err(_) => continue,
        }
    }
    assert!(
        hit.is_some(),
        "expected at least one unplanned step in 2..64 for the O(sqrt d) key set"
    );
}

/// Hoisted decompositions replay only against their source ciphertext:
/// a stale replay against a different ciphertext is a typed error.
#[test]
fn stale_hoist_replay_is_rejected() {
    let (_, params) = preset_chains().swap_remove(0);
    let net = tiny_cnn();
    let (session, messages) = recorded_session(&net, &params);
    let ct_a = wire::decode_ciphertext(&messages[0].1, &params).unwrap();
    let ct_b = wire::decode_ciphertext(&messages[1].1, &params).unwrap();

    let eval = session.evaluator();
    let keys = session.galois_keys();
    // Find a step the session actually planned keys for.
    let mut planned = None;
    for s in 1..64i64 {
        if eval.rotate_rows(&ct_a, s, keys).is_ok() {
            planned = Some(s);
            break;
        }
    }
    let s = planned.expect("session plans at least one rotation step");

    let hoisted = eval.hoist(&ct_a).unwrap();
    // Replaying against the hoist's own source works…
    assert!(eval.rotate_hoisted(&ct_a, &hoisted, s, keys).is_ok());
    // …replaying it against a different ciphertext is rejected.
    assert!(matches!(
        eval.rotate_hoisted(&ct_b, &hoisted, s, keys),
        Err(Error::ParameterMismatch)
    ));
}
