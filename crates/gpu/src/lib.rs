//! # cheetah-gpu — the Fig. 8 GPU NTT study
//!
//! The paper measures cuHE's NTT on an NVIDIA 1080-Ti and finds speedup
//! saturating near 120× — far short of the 16384× the limit study demands.
//! No GPU exists in this environment, so this crate substitutes:
//!
//! * [`simt`] — a first-order SIMT analytical model (occupancy ramp,
//!   64-bit-emulation instruction expansion, memory roofline) calibrated
//!   to 1080-Ti specifications, regenerating the Fig. 8 curves;
//! * [`batched`] — a real multi-threaded batched NTT demonstrating the
//!   same saturation phenomenon on host cores.

pub mod batched;
pub mod simt;

pub use batched::{batched_forward, batched_inverse, measure_batched, MeasuredPoint};
pub use simt::{figure8_sweep, model_batched_ntt, CpuSpec, GpuSpec, NttPoint};
