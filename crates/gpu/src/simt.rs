//! SIMT analytical model of batched NTT on a GPU — the Fig. 8 substitute.
//!
//! The paper benchmarks cuHE's NTT on an NVIDIA 1080-Ti and observes
//! speedup over a CPU saturating around 120× at batch 512–1024, with 70 %
//! warp occupancy and 85 % warp execution efficiency, limited by (a)
//! 64-bit integer emulation and (b) modular arithmetic costing > 10
//! instructions per multiplication (§VI).
//!
//! No GPU exists in this environment, so the figure is regenerated from a
//! first-order SIMT model with exactly those mechanisms: an occupancy ramp
//! (small batches cannot fill the machine), an instruction-expansion
//! factor for emulated 64-bit modular arithmetic, a memory roofline, and
//! fixed kernel-launch overhead. The model is calibrated against the
//! published 1080-Ti specifications, not fitted to the figure.

/// GPU hardware description (defaults: GTX 1080-Ti).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Streaming multiprocessors.
    pub sms: u32,
    /// CUDA cores (32-bit lanes) per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Achievable warp occupancy (register pressure cap) — the paper's
    /// nvprof reports 70 %.
    pub occupancy_cap: f64,
    /// Warp execution efficiency — the paper's nvprof reports 85 %.
    pub exec_efficiency: f64,
    /// Instructions per 64-bit modular multiplication (emulation +
    /// modular reduction; "over 10 compute instructions per
    /// multiplication" plus 4-way 32-bit emulation of 64-bit products).
    pub instrs_per_modmul: f64,
    /// Kernel launch + synchronization overhead per NTT pass, seconds.
    pub launch_overhead_s: f64,
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self {
            sms: 28,
            cores_per_sm: 128,
            clock_ghz: 1.582,
            mem_bw_gbps: 484.0,
            max_warps_per_sm: 64,
            occupancy_cap: 0.70,
            exec_efficiency: 0.85,
            instrs_per_modmul: 14.0,
            launch_overhead_s: 5.0e-6,
        }
    }
}

/// CPU reference for the speedup denominator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Sustained 64-bit modular multiplications per second, single thread.
    /// Calibrated to the SEAL-2.3-era CPU NTT the paper's cuHE comparison
    /// used (~2.7 ns per modular multiplication on a 3 GHz Xeon; modern
    /// Barrett implementations are faster, but that is not the baseline
    /// Fig. 8 measured against).
    pub modmuls_per_s: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self {
            modmuls_per_s: 3.7e8,
        }
    }
}

/// One evaluated point of the Fig. 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NttPoint {
    /// Transform size `n`.
    pub n: usize,
    /// Batch size.
    pub batch: usize,
    /// Modeled GPU latency (seconds) for the whole batch.
    pub gpu_s: f64,
    /// Modeled CPU latency (seconds) for the whole batch.
    pub cpu_s: f64,
    /// Speedup `cpu / gpu`.
    pub speedup: f64,
    /// Achieved warp occupancy at this batch size.
    pub occupancy: f64,
}

/// Models a batched `n`-point NTT on the GPU and the CPU reference.
pub fn model_batched_ntt(gpu: &GpuSpec, cpu: &CpuSpec, n: usize, batch: usize) -> NttPoint {
    assert!(n.is_power_of_two() && n >= 2);
    let log_n = n.ilog2() as f64;
    let butterflies = (n as f64 / 2.0) * log_n;
    // 3 modmuls per Harvey butterfly.
    let modmuls = 3.0 * butterflies * batch as f64;

    // Occupancy ramp: each NTT stage launches n/2 lanes = n/64 warps per
    // transform; the batch multiplies available parallelism.
    let warps_needed = (n as f64 / 2.0 / 32.0) * batch as f64;
    let warp_slots = (gpu.sms * gpu.max_warps_per_sm) as f64;
    let occupancy = (warps_needed / warp_slots).min(gpu.occupancy_cap);

    // Compute roofline.
    let peak_instr_rate = gpu.sms as f64 * gpu.cores_per_sm as f64 * gpu.clock_ghz * 1e9;
    let effective_rate = peak_instr_rate
        * (occupancy / gpu.occupancy_cap).min(1.0)
        * gpu.occupancy_cap
        * gpu.exec_efficiency
        / gpu.instrs_per_modmul;
    let compute_s = modmuls / effective_rate;

    // Memory roofline: each of log n stages streams the batch through
    // device memory (read + write 8 bytes per coefficient).
    let traffic_bytes = 2.0 * 8.0 * n as f64 * log_n * batch as f64;
    let memory_s = traffic_bytes / (gpu.mem_bw_gbps * 1e9);

    let gpu_s = compute_s.max(memory_s) + gpu.launch_overhead_s * log_n;
    let cpu_s = modmuls / cpu.modmuls_per_s;
    NttPoint {
        n,
        batch,
        gpu_s,
        cpu_s,
        speedup: cpu_s / gpu_s,
        occupancy,
    }
}

/// Full Fig. 8 sweep: batch sizes 1..=1024 (powers of two) for
/// `n ∈ {16K, 32K, 64K}`.
pub fn figure8_sweep(gpu: &GpuSpec, cpu: &CpuSpec) -> Vec<NttPoint> {
    let mut out = Vec::new();
    for n in [16384usize, 32768, 65536] {
        let mut batch = 1usize;
        while batch <= 1024 {
            out.push(model_batched_ntt(gpu, cpu, n, batch));
            batch *= 2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_saturates_near_120x() {
        // The Fig. 8 headline: "At larger batch sizes (512/1024), the
        // speedup saturates at 120x".
        let gpu = GpuSpec::default();
        let cpu = CpuSpec::default();
        let p512 = model_batched_ntt(&gpu, &cpu, 16384, 512);
        let p1024 = model_batched_ntt(&gpu, &cpu, 16384, 1024);
        assert!(
            (80.0..170.0).contains(&p512.speedup),
            "batch-512 speedup {:.0} should be near 120x",
            p512.speedup
        );
        // Saturation: doubling the batch changes speedup by < 5%.
        let rel = (p1024.speedup - p512.speedup).abs() / p512.speedup;
        assert!(rel < 0.05, "not saturated: {rel:.3}");
    }

    #[test]
    fn speedup_grows_with_batch_before_saturation() {
        let gpu = GpuSpec::default();
        let cpu = CpuSpec::default();
        let small = model_batched_ntt(&gpu, &cpu, 16384, 1);
        let mid = model_batched_ntt(&gpu, &cpu, 16384, 64);
        let big = model_batched_ntt(&gpu, &cpu, 16384, 512);
        assert!(small.speedup < mid.speedup);
        assert!(mid.speedup <= big.speedup * 1.01);
    }

    #[test]
    fn larger_n_saturates_at_smaller_batch() {
        // A 64K transform fills the machine with fewer transforms.
        let gpu = GpuSpec::default();
        let cpu = CpuSpec::default();
        let n16 = model_batched_ntt(&gpu, &cpu, 16384, 8);
        let n64 = model_batched_ntt(&gpu, &cpu, 65536, 8);
        assert!(n64.occupancy >= n16.occupancy);
    }

    #[test]
    fn occupancy_matches_paper_at_batch_512() {
        // nvprof: 70% warp occupancy at batch 512.
        let p = model_batched_ntt(&GpuSpec::default(), &CpuSpec::default(), 16384, 512);
        assert!((p.occupancy - 0.70).abs() < 1e-9);
    }

    #[test]
    fn gpu_far_short_of_needed_speedup() {
        // §VI conclusion: "GPUs fall well short of the improvements
        // required" (16384x needed for NTT, ~120x available).
        let sweep = figure8_sweep(&GpuSpec::default(), &CpuSpec::default());
        let best = sweep.iter().map(|p| p.speedup).fold(0.0, f64::max);
        assert!(best < 1000.0, "best GPU speedup {best:.0} must be << 16384");
    }

    #[test]
    fn sweep_covers_all_configurations() {
        let sweep = figure8_sweep(&GpuSpec::default(), &CpuSpec::default());
        assert_eq!(sweep.len(), 3 * 11); // 3 sizes x batches 1..=1024
    }
}
