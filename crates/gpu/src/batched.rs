//! Real multi-threaded batched NTT — a measurable stand-in for the GPU.
//!
//! The SIMT model in [`crate::simt`] regenerates Fig. 8's *numbers*; this
//! module demonstrates the same *phenomenon* (throughput grows with batch
//! size until the parallel machine saturates) on hardware that actually
//! exists here: host threads. Saturation lands at ~core-count instead of
//! ~120×, which is exactly the point — batch parallelism saturates at the
//! width of whatever parallel substrate executes it.

use std::time::Instant;

use cheetah_bfv::arith::{generate_ntt_prime, Modulus};
use cheetah_bfv::ntt::NttTable;

/// Executes `batch` independent `n`-point forward NTTs across `threads`
/// worker threads. Returns the transformed polynomials.
///
/// # Panics
///
/// Panics if `polys` have inconsistent lengths.
pub fn batched_forward(table: &NttTable, polys: &mut [Vec<u64>], threads: usize) {
    let threads = threads.max(1);
    if threads == 1 || polys.len() <= 1 {
        for p in polys.iter_mut() {
            table.forward(p);
        }
        return;
    }
    let chunk = polys.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for slice in polys.chunks_mut(chunk) {
            scope.spawn(move |_| {
                for p in slice {
                    table.forward(p);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// One measured point of the threaded-NTT sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Transform size.
    pub n: usize,
    /// Batch size.
    pub batch: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Sequential wall time (seconds).
    pub sequential_s: f64,
    /// Parallel wall time (seconds).
    pub parallel_s: f64,
    /// Speedup `sequential / parallel`.
    pub speedup: f64,
}

/// Measures batched-NTT speedup for one `(n, batch, threads)` point.
/// Takes the best of three runs per configuration to suppress scheduling
/// jitter on shared machines.
pub fn measure_batched(n: usize, batch: usize, threads: usize, seed: u64) -> MeasuredPoint {
    let q = Modulus::new(generate_ntt_prime(50, n).expect("ntt prime")).expect("modulus");
    let table = NttTable::new(n, q).expect("ntt table");
    let make_batch = || -> Vec<Vec<u64>> {
        (0..batch)
            .map(|i| {
                (0..n)
                    .map(|j| (seed.wrapping_mul(31).wrapping_add((i * n + j) as u64)) % q.value())
                    .collect()
            })
            .collect()
    };

    let best = |workers: usize| -> (f64, Vec<Vec<u64>>) {
        let mut best_time = f64::INFINITY;
        let mut out = Vec::new();
        for _ in 0..3 {
            let mut data = make_batch();
            let start = Instant::now();
            batched_forward(&table, &mut data, workers);
            let t = start.elapsed().as_secs_f64();
            if t < best_time {
                best_time = t;
                out = data;
            }
        }
        (best_time, out)
    };

    let (sequential_s, seq) = best(1);
    let (parallel_s, par) = best(threads);
    assert_eq!(seq, par, "parallel NTT must match sequential");
    MeasuredPoint {
        n,
        batch,
        threads,
        sequential_s,
        parallel_s,
        speedup: sequential_s / parallel_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_output_matches_sequential() {
        // measure_batched asserts equality internally.
        let p = measure_batched(1024, 8, 4, 42);
        assert_eq!(p.batch, 8);
        assert!(p.sequential_s > 0.0 && p.parallel_s > 0.0);
    }

    #[test]
    fn single_thread_is_identity_path() {
        let p = measure_batched(512, 4, 1, 7);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn large_batch_benefits_from_threads() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores < 2 {
            return; // nothing to demonstrate on one core
        }
        let p = measure_batched(8192, 128, cores.min(8), 3);
        assert!(
            p.speedup > 1.1,
            "expected parallel speedup, got {:.2}x with {} threads",
            p.speedup,
            p.threads
        );
    }
}
