//! Real multi-threaded batched NTT — a measurable stand-in for the GPU.
//!
//! The SIMT model in [`crate::simt`] regenerates Fig. 8's *numbers*; this
//! module demonstrates the same *phenomenon* (throughput grows with batch
//! size until the parallel machine saturates) on hardware that actually
//! exists here: host threads. Saturation lands at ~core-count instead of
//! ~120×, which is exactly the point — batch parallelism saturates at the
//! width of whatever parallel substrate executes it.
//!
//! Storage is a [`PolyBatch`]: all polynomials in **one contiguous
//! allocation** with stride-`n` views, so worker threads stream through
//! disjoint memory ranges instead of chasing per-polynomial heap pointers
//! (the seed's `Vec<Vec<u64>>` layout). Both transform directions are
//! measured; outputs are bit-identical to the serial path for any thread
//! count.

use std::time::Instant;

use cheetah_bfv::arith::{generate_ntt_prime, Modulus};
use cheetah_bfv::batch::PolyBatch;
use cheetah_bfv::ntt::NttTable;
use cheetah_bfv::poly::Representation;

/// Executes every forward NTT in the batch across up to `threads` worker
/// threads (contiguous storage, stride-`n` chunking).
///
/// # Panics
///
/// Panics if the batch is not in coefficient form or mismatches the table.
pub fn batched_forward(table: &NttTable, batch: &mut PolyBatch, threads: usize) {
    batch.forward_ntt(table, threads.max(1));
}

/// Executes every inverse NTT in the batch across up to `threads` worker
/// threads.
///
/// # Panics
///
/// Panics if the batch is not in evaluation form or mismatches the table.
pub fn batched_inverse(table: &NttTable, batch: &mut PolyBatch, threads: usize) {
    batch.inverse_ntt(table, threads.max(1));
}

/// One measured point of the threaded-NTT sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Transform size.
    pub n: usize,
    /// Batch size.
    pub batch: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Sequential wall time (seconds).
    pub sequential_s: f64,
    /// Parallel wall time (seconds).
    pub parallel_s: f64,
    /// Speedup `sequential / parallel`.
    pub speedup: f64,
}

/// Measures batched-NTT speedup for one `(n, batch, threads)` point.
/// Takes the best of three runs per configuration to suppress scheduling
/// jitter on shared machines.
pub fn measure_batched(n: usize, batch: usize, threads: usize, seed: u64) -> MeasuredPoint {
    let q = Modulus::new(generate_ntt_prime(50, n).expect("ntt prime")).expect("modulus");
    let table = NttTable::new(n, q).expect("ntt table");
    let make_batch = || {
        PolyBatch::from_fn(batch, n, Representation::Coeff, |i, j| {
            seed.wrapping_mul(31).wrapping_add((i * n + j) as u64) % q.value()
        })
    };

    let best = |workers: usize| -> (f64, PolyBatch) {
        let mut best_time = f64::INFINITY;
        let mut out = PolyBatch::zero(0, n, Representation::Eval);
        for _ in 0..3 {
            let mut data = make_batch();
            let start = Instant::now();
            batched_forward(&table, &mut data, workers);
            let t = start.elapsed().as_secs_f64();
            if t < best_time {
                best_time = t;
                out = data;
            }
        }
        (best_time, out)
    };

    let (sequential_s, seq) = best(1);
    let (parallel_s, par) = best(threads);
    assert_eq!(seq, par, "parallel NTT must match sequential");
    MeasuredPoint {
        n,
        batch,
        threads,
        sequential_s,
        parallel_s,
        speedup: sequential_s / parallel_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_output_matches_sequential() {
        // measure_batched asserts equality internally.
        let p = measure_batched(1024, 8, 4, 42);
        assert_eq!(p.batch, 8);
        assert!(p.sequential_s > 0.0 && p.parallel_s > 0.0);
    }

    #[test]
    fn single_thread_is_identity_path() {
        let p = measure_batched(512, 4, 1, 7);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn forward_inverse_roundtrip_through_batch_api() {
        let q = Modulus::new(generate_ntt_prime(50, 256).unwrap()).unwrap();
        let table = NttTable::new(256, q).unwrap();
        let mut batch = PolyBatch::from_fn(6, 256, Representation::Coeff, |i, j| {
            ((i * 977 + j * 31) as u64) % q.value()
        });
        let orig = batch.clone();
        batched_forward(&table, &mut batch, 4);
        batched_inverse(&table, &mut batch, 4);
        assert_eq!(batch, orig);
    }

    #[test]
    fn large_batch_benefits_from_threads() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores < 2 {
            return; // nothing to demonstrate on one core
        }
        let p = measure_batched(8192, 128, cores.min(8), 3);
        assert!(
            p.speedup > 1.1,
            "expected parallel speedup, got {:.2}x with {} threads",
            p.speedup,
            p.threads
        );
    }
}
