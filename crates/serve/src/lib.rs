//! # cheetah-serve — concurrent private-inference serving
//!
//! The one-party [`cheetah_protocol::PrivateInferenceSession`] proves the
//! protocol; this crate runs it at *throughput*: many concurrent client
//! sessions against **one** prepared model.
//!
//! The architecture follows three invariants (see `docs/SERVE.md`):
//!
//! * **Shared immutable preparation** — a [`PreparedModel`] wraps the
//!   protocol crate's `Arc<PreparedLayers>` (packed weight plaintexts,
//!   BSGS / reduce / level plans, the rotation-step union) plus
//!   precomputed nonlinear bundle output shapes. It is built once and
//!   shared lock-free: nothing in it is mutated after construction.
//! * **Per-client session halves** — [`ClientSession`] owns the secret
//!   key, encryptors, and activation state; [`ServerSession`] owns the
//!   client's Galois keys, the mask RNG stream, the transcript, and the
//!   per-layer reports. A [`SessionDriver`] steps the two halves through
//!   the wire-validated protocol boundary — every ciphertext crosses as
//!   validated bytes, never as a live object.
//! * **Batched sweeps over pooled scratch** — [`ServerPool`] coalesces
//!   same-layer work from different clients into one parallel sweep over
//!   `crossbeam::scope` workers, each holding a leased
//!   [`cheetah_bfv::ScratchLease`] from a server-level
//!   [`cheetah_bfv::ScratchPool`] so warm buffers survive across
//!   sessions.
//!
//! Faults stay *contained*: a corrupted message kills its own session
//! with a typed error and a fault-bearing report, and must never perturb
//! a neighboring session's transcript (pinned by the concurrency
//! determinism suite).

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod model;
pub mod pool;
pub mod session;

pub use model::PreparedModel;
pub use pool::{ServerPool, SessionOutcome};
pub use session::{ClientSession, ClientSetup, LayerDownload, ServerSession, SessionDriver};
