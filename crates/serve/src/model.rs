//! The shared, immutable prepared model a server pool serves.

use std::sync::Arc;

use cheetah_bfv::{BfvParams, Result};
use cheetah_core::ptune::ChainPlan;
use cheetah_core::Schedule;
use cheetah_nn::{Network, Weights};
use cheetah_protocol::PreparedLayers;

/// Everything the serving layer shares across concurrent sessions: the
/// protocol crate's prepared layers plus the nonlinear bundle output
/// shapes (so per-round mask drawing never re-derives shapes).
///
/// Immutability contract: every field is written once in
/// [`PreparedModel::prepare`] and only ever read afterwards — all methods
/// take `&self`, there is no interior mutability, and the struct is
/// shared behind an `Arc`. That is what makes the pool's session sweeps
/// lock-free on the model side.
pub struct PreparedModel {
    layers: Arc<PreparedLayers>,
    /// `bundle_shapes[k]`: output shape of linear layer `k`'s nonlinear
    /// bundle — the shape of the next round's client-side mask.
    bundle_shapes: Vec<Vec<usize>>,
}

impl PreparedModel {
    /// Prepares a network once for any number of concurrent sessions:
    /// packs every linear layer's weights, fixes the rotation/level
    /// plans, and dry-runs each nonlinear bundle on zeros to record its
    /// output shape.
    ///
    /// # Errors
    ///
    /// Propagates preparation errors from
    /// [`PreparedLayers::new`]; residual networks are rejected here (at
    /// prepare time) rather than at the first session.
    pub fn prepare(
        net: &Network,
        weights: &Weights,
        params: BfvParams,
        schedule: Schedule,
    ) -> Result<Arc<Self>> {
        let layers = Arc::new(PreparedLayers::new(net, weights, params, schedule)?);
        let bundle_shapes = (0..layers.linear_count())
            .map(|k| layers.bundle_output_shape(k))
            .collect::<Result<Vec<_>>>()?;
        Ok(Arc::new(Self {
            layers,
            bundle_shapes,
        }))
    }

    /// Prepares a network from a solver-produced [`ChainPlan`] (HE-PTune
    /// v2): the plan's chain and schedule drive preparation and its
    /// per-layer levels cap the runtime level planner — see
    /// [`PreparedLayers::from_chain_plan`].
    ///
    /// # Errors
    ///
    /// As [`PreparedModel::prepare`], plus a layer-count mismatch between
    /// the plan and the network.
    pub fn prepare_with_plan(
        net: &Network,
        weights: &Weights,
        plan: &ChainPlan,
    ) -> Result<Arc<Self>> {
        let layers = Arc::new(PreparedLayers::from_chain_plan(net, weights, plan)?);
        let bundle_shapes = (0..layers.linear_count())
            .map(|k| layers.bundle_output_shape(k))
            .collect::<Result<Vec<_>>>()?;
        Ok(Arc::new(Self {
            layers,
            bundle_shapes,
        }))
    }

    /// The shared prepared layers (plans, packed plaintexts, evaluator).
    pub fn layers(&self) -> &Arc<PreparedLayers> {
        &self.layers
    }

    /// The parameter set every client of this model must match.
    pub fn params(&self) -> &BfvParams {
        self.layers.params()
    }

    /// Output shape of linear layer `k`'s nonlinear bundle.
    pub fn bundle_shape(&self, k: usize) -> &[usize] {
        &self.bundle_shapes[k]
    }

    /// Number of prepared linear layers.
    pub fn linear_count(&self) -> usize {
        self.layers.linear_count()
    }

    /// The rotation steps a client must bring Galois keys for.
    pub fn required_steps(&self) -> &[i64] {
        self.layers.required_steps()
    }

    /// FNV-1a fingerprint of the parameter chain; every wire message is
    /// validated against it.
    pub fn fingerprint(&self) -> u64 {
        self.layers.fingerprint()
    }
}
