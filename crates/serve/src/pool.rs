//! The worker pool: batched, scratch-pooled sweeps over concurrent
//! sessions.
//!
//! Scheduling rule (see `docs/SERVE.md`): every live session sits at some
//! linear-layer index; each scheduling round picks the **lowest pending
//! layer** and sweeps every session at that layer in one
//! `crossbeam::scope` fan-out. Same-layer work from different clients
//! thus runs back-to-back against the same prepared plaintexts and plans
//! (warm caches, one pass over the model state), and faulted sessions
//! simply leave the live set without touching their neighbors.
//!
//! Backpressure is structural: a sweep admits at most `workers` threads,
//! each holding one leased [`cheetah_bfv::Scratch`] from the server-level
//! [`ScratchPool`] — memory is bounded by the worker count, not the
//! client count, and scratch buffers stay warm across sessions and
//! sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cheetah_bfv::{Result, ScratchPool};
use cheetah_nn::Tensor;
use cheetah_protocol::{LayerReport, Transcript};

use crate::model::PreparedModel;
use crate::session::SessionDriver;

/// Terminal state of one served session.
pub struct SessionOutcome {
    /// The driver's client id.
    pub client_id: u64,
    /// The prediction, or the typed error that killed the session.
    pub result: Result<Tensor>,
    /// The session's full transcript (setup, uploads, downloads, GC).
    pub transcript: Transcript,
    /// Per-layer plan/noise/fault reports.
    pub reports: Vec<LayerReport>,
}

/// A pool of workers serving concurrent sessions against one shared
/// [`PreparedModel`].
pub struct ServerPool {
    model: Arc<PreparedModel>,
    workers: usize,
    scratch: Arc<ScratchPool>,
}

impl ServerPool {
    /// Creates a pool of `workers` sweep threads (min 1) with a
    /// server-level scratch pool shaped for the model's parameters.
    pub fn new(model: Arc<PreparedModel>, workers: usize) -> Self {
        let scratch = Arc::new(ScratchPool::for_params(model.params()));
        Self {
            model,
            workers: workers.max(1),
            scratch,
        }
    }

    /// The shared model this pool serves.
    pub fn model(&self) -> &Arc<PreparedModel> {
        &self.model
    }

    /// Idle scratch instances currently pooled (diagnostic — shows warm
    /// reuse across sweeps).
    pub fn scratch_idle(&self) -> usize {
        self.scratch.idle()
    }

    /// Runs a set of sessions to completion and returns their outcomes
    /// in input order. Each scheduling round coalesces every live session
    /// at the lowest pending layer into one parallel sweep.
    pub fn run(&self, mut drivers: Vec<SessionDriver>) -> Vec<SessionOutcome> {
        while let Some(layer) = drivers
            .iter()
            .filter(|d| !d.is_done())
            .map(SessionDriver::layer)
            .min()
        {
            let batch: Vec<&mut SessionDriver> = drivers
                .iter_mut()
                .filter(|d| !d.is_done() && d.layer() == layer)
                .collect();
            self.sweep(batch, layer);
        }
        drivers
            .into_iter()
            .map(SessionDriver::into_outcome)
            .collect()
    }

    /// One parallel sweep: `workers` threads pull same-layer sessions
    /// from a shared queue, each stepping its session one full round with
    /// a leased scratch.
    fn sweep(&self, batch: Vec<&mut SessionDriver>, layer: usize) {
        let jobs: Vec<Mutex<&mut SessionDriver>> = batch.into_iter().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        let workers = self.workers.min(jobs.len()).max(1);
        let swept = crossbeam::scope(|s| {
            for _ in 0..workers {
                let jobs = &jobs;
                let next = &next;
                let pool = &self.scratch;
                s.spawn(move |_| {
                    let mut scratch = pool.lease();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        // Each index is claimed exactly once, so the lock
                        // is always free; a poisoned slot (worker died
                        // mid-step) is left for the stall guard below.
                        if let Ok(mut driver) = jobs[i].lock() {
                            driver.step(&mut scratch);
                        }
                    }
                });
            }
        });

        // A worker panic (a bug below the typed-error boundary) must not
        // hang the scheduler: any session still sitting at this sweep's
        // layer made no progress — fail it rather than spin on it.
        if swept.is_err() {
            for job in &jobs {
                let mut driver = match job.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if !driver.is_done() && driver.layer() == layer {
                    driver.fail_stalled();
                }
            }
        }
    }
}
