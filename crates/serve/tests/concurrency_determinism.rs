//! Concurrency determinism suite: the serving layer must be a *pure
//! throughput* optimization.
//!
//! Pins, on all three preset chains:
//!
//! * N sessions run concurrently through a [`ServerPool`] decrypt
//!   **bit-identically** to the same N sessions run serially — outputs
//!   and full transcripts (labels, accounted bytes, wire payloads);
//! * both match the cleartext reference network and the one-party
//!   [`PrivateInferenceSession`] for the same seed — sharing a prepared
//!   model changes nothing observable;
//! * a faulted client (upload corrupted in flight by the fault injector)
//!   dies with a typed error and a fault-bearing report while its
//!   neighbors' outputs and transcripts stay bit-identical to a clean
//!   run.

use std::sync::Arc;

use cheetah_bfv::BfvParams;
use cheetah_core::Schedule;
use cheetah_nn::inference::{client_inputs, infer};
use cheetah_nn::models::tiny_cnn;
use cheetah_nn::Weights;
use cheetah_protocol::faults::{Corruption, FaultInjector};
use cheetah_protocol::{PrivateInferenceSession, Transcript};
use cheetah_serve::{PreparedModel, ServerPool, SessionDriver};

const N: usize = 4096;
const CLIENTS: usize = 3;
const BASE_SEED: u64 = 9000;

/// The three preset chains with the session's decomposition base.
fn preset_chains() -> Vec<(&'static str, BfvParams)> {
    let single_60 = BfvParams::builder()
        .degree(N)
        .plain_bits(18)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let rns_2x30 = BfvParams::builder()
        .degree(N)
        .plain_bits(16)
        .moduli_bits(&[30, 30])
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let rns_3x36 = BfvParams::builder()
        .degree(N)
        .plain_bits(17)
        .moduli_bits(&[36, 36, 36])
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    vec![
        ("single_60", single_60),
        ("rns_2x30", rns_2x30),
        ("rns_3x36", rns_3x36),
    ]
}

/// Everything observable about a transcript, for bit-identity checks.
fn transcript_sig(t: &Transcript) -> Vec<(String, usize, Vec<u8>)> {
    t.messages()
        .iter()
        .map(|m| (m.label.clone(), m.bytes, m.payload.clone()))
        .collect()
}

fn drivers(model: &Arc<PreparedModel>, inputs: &[cheetah_nn::Tensor]) -> Vec<SessionDriver> {
    inputs
        .iter()
        .enumerate()
        .map(|(i, input)| SessionDriver::new(model, i as u64, BASE_SEED + i as u64, input).unwrap())
        .collect()
}

#[test]
fn concurrent_sessions_match_serial_runs_and_references_on_all_presets() {
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 424);
    let inputs = client_inputs(&net.input_shape, 3, 7100, CLIENTS);

    for (name, params) in preset_chains() {
        let model =
            PreparedModel::prepare(&net, &weights, params.clone(), Schedule::PartialAligned)
                .unwrap();

        // Concurrent: every client at once, multi-worker sweeps.
        let pool = ServerPool::new(Arc::clone(&model), CLIENTS);
        let concurrent = pool.run(drivers(&model, &inputs));
        assert_eq!(concurrent.len(), CLIENTS);

        // Serial: the same sessions one at a time on a single worker.
        let serial_pool = ServerPool::new(Arc::clone(&model), 1);
        let serial: Vec<_> = drivers(&model, &inputs)
            .into_iter()
            .flat_map(|d| serial_pool.run(vec![d]))
            .collect();

        for (i, (c, s)) in concurrent.iter().zip(&serial).enumerate() {
            let c_out = c.result.as_ref().unwrap();
            let s_out = s.result.as_ref().unwrap();
            assert_eq!(
                c_out.data(),
                s_out.data(),
                "{name} client {i}: concurrent != serial output"
            );
            assert_eq!(
                transcript_sig(&c.transcript),
                transcript_sig(&s.transcript),
                "{name} client {i}: concurrent != serial transcript"
            );

            // Cleartext reference.
            let expect = infer(&net, &weights, &inputs[i]).output;
            assert_eq!(
                c_out.data(),
                expect.data(),
                "{name} client {i}: served inference diverged from cleartext"
            );

            // One-party protocol reference: same seed, same everything.
            let mut reference = PrivateInferenceSession::new(
                &net,
                &weights,
                params.clone(),
                Schedule::PartialAligned,
                BASE_SEED + i as u64,
            )
            .unwrap();
            let (ref_out, ref_transcript) = reference.run(&inputs[i]).unwrap();
            assert_eq!(
                c_out.data(),
                ref_out.data(),
                "{name} client {i}: served != one-party session output"
            );
            assert_eq!(
                transcript_sig(&c.transcript),
                transcript_sig(&ref_transcript),
                "{name} client {i}: served != one-party session transcript"
            );
        }

        // Scratch instances went back to the server-level pool warm.
        assert!(
            pool.scratch_idle() >= 1,
            "{name}: sweeps must return leased scratch to the pool"
        );
    }
}

#[test]
fn solver_planned_model_serves_concurrent_clients() {
    // HE-PTune v2 end to end through the serving layer: the chain solver
    // picks the parameter chain and per-layer levels, prepare_with_plan
    // builds the shared model, and a concurrent pool of clients decrypts
    // bit-identically to the cleartext reference. Solved in the
    // worst-case regime because the engine guards every operation with
    // its worst-case tracked noise.
    use cheetah_core::ptune::{solve_chain_plan, NoiseRegime};
    use cheetah_core::QuantSpec;

    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 424);
    let inputs = client_inputs(&net.input_shape, 3, 7100, CLIENTS);

    let plan = solve_chain_plan(
        &net.linear_layers(),
        &QuantSpec::default(),
        Schedule::PartialAligned,
        NoiseRegime::WorstCase,
        &[N],
    )
    .expect("tiny CNN must be solvable");
    let model = PreparedModel::prepare_with_plan(&net, &weights, &plan).unwrap();
    assert_eq!(
        model.layers().planned_levels(),
        Some(plan.levels().as_slice())
    );

    let pool = ServerPool::new(Arc::clone(&model), CLIENTS);
    let results = pool.run(drivers(&model, &inputs));
    assert_eq!(results.len(), CLIENTS);
    for (i, r) in results.iter().enumerate() {
        let out = r.result.as_ref().unwrap();
        let expect = infer(&net, &weights, &inputs[i]).output;
        assert_eq!(
            out.data(),
            expect.data(),
            "{} client {i}: solver-planned serving diverged from cleartext",
            plan.name
        );
    }
}

#[test]
fn sparse_and_pow2_models_serve_concurrent_clients_exactly() {
    // Weight-structure variants through the full serving stack: an
    // 80%-pruned model (sparse BSGS plans, live-channel reduces, smaller
    // Galois key set) and a pow2-rounded model (shift-add `mul_plain`
    // plaintexts) each serve a concurrent client fleet bit-identically to
    // the cleartext reference on the same transformed weights.
    let net = tiny_cnn();
    let inputs = client_inputs(&net.input_shape, 3, 7100, CLIENTS);
    let (_, params) = preset_chains().pop().unwrap(); // rns_3x36

    let mut sparse = Weights::random(&net, 2, 424);
    sparse.prune_to_sparsity(0.8, 17);
    let mut pow2 = Weights::random(&net, 3, 425);
    pow2.round_to_pow2(2);

    let dense_steps = PreparedModel::prepare(
        &net,
        &Weights::random(&net, 2, 424),
        params.clone(),
        Schedule::PartialAligned,
    )
    .unwrap()
    .layers()
    .required_steps()
    .len();

    for (what, weights) in [("sparse", &sparse), ("pow2", &pow2)] {
        let model = PreparedModel::prepare(&net, weights, params.clone(), Schedule::PartialAligned)
            .unwrap();
        if what == "sparse" {
            assert!(
                model.layers().required_steps().len() < dense_steps,
                "sparse serving model must need fewer Galois steps ({} vs {dense_steps})",
                model.layers().required_steps().len()
            );
        }
        let pool = ServerPool::new(Arc::clone(&model), CLIENTS);
        let results = pool.run(drivers(&model, &inputs));
        assert_eq!(results.len(), CLIENTS);
        for (i, r) in results.iter().enumerate() {
            let out = r.result.as_ref().unwrap();
            let expect = infer(&net, weights, &inputs[i]).output;
            assert_eq!(
                out.data(),
                expect.data(),
                "{what} client {i}: served inference diverged from cleartext"
            );
        }
    }
}

#[test]
fn faulted_client_does_not_perturb_neighbors() {
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 424);
    let inputs = client_inputs(&net.input_shape, 3, 7100, CLIENTS);
    let (_, params) = preset_chains().pop().unwrap(); // rns_3x36

    let model =
        PreparedModel::prepare(&net, &weights, params.clone(), Schedule::PartialAligned).unwrap();

    // Clean baseline run.
    let pool = ServerPool::new(Arc::clone(&model), CLIENTS);
    let clean = pool.run(drivers(&model, &inputs));

    // Same fleet, but client 1's layer-1 upload is corrupted in flight.
    let faulted_idx = 1usize;
    let tampered: Vec<SessionDriver> = drivers(&model, &inputs)
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            if i == faulted_idx {
                let params = params.clone();
                d.with_tamper(Box::new(move |layer, bytes| {
                    if layer == 1 {
                        *bytes =
                            FaultInjector::apply(bytes, &Corruption::ForeignFingerprint, &params);
                    }
                }))
            } else {
                d
            }
        })
        .collect();
    let mixed = pool.run(tampered);

    for (i, (m, c)) in mixed.iter().zip(&clean).enumerate() {
        if i == faulted_idx {
            // The faulted client dies with a typed error and says which
            // message killed it.
            assert!(m.result.is_err(), "tampered client must not succeed");
            let fault = m
                .reports
                .iter()
                .find_map(|r| r.fault.as_ref())
                .expect("faulted session leaves a fault-bearing report");
            assert!(
                fault.contains("foreign parameter chain"),
                "unexpected fault: {fault}"
            );
            // It got through layer 0 before the corruption hit.
            assert!(
                m.transcript.messages().len() < c.transcript.messages().len(),
                "faulted transcript must stop early"
            );
        } else {
            // Neighbors are bit-identical to the clean run.
            assert_eq!(
                m.result.as_ref().unwrap().data(),
                c.result.as_ref().unwrap().data(),
                "client {i}: neighbor output perturbed by a faulted peer"
            );
            assert_eq!(
                transcript_sig(&m.transcript),
                transcript_sig(&c.transcript),
                "client {i}: neighbor transcript perturbed by a faulted peer"
            );
        }
    }
}
