//! Quickstart: the BFV pipeline of Fig. 2 — encode, encrypt,
//! homomorphically evaluate, decrypt, decode — with live noise tracking.
//!
//! Run with: `cargo run --example quickstart`

use cheetah::bfv::{BatchEncoder, BfvParams, Decryptor, Encryptor, Error, Evaluator, KeyGenerator};

fn main() -> Result<(), Error> {
    // Table II parameters: n = 4096, 17-bit t, 60-bit q (128-bit secure),
    // ciphertext decomposition base A = 2^20.
    let params = BfvParams::builder()
        .degree(4096)
        .plain_bits(17)
        .cipher_bits(60)
        .a_dcmp(1 << 20)
        .build()?;
    let chain = params.chain();
    println!(
        "parameters: n={}, t={} ({} bits), Q={:?} ({} limbs, {} bits), Δ=Q/t={}",
        params.degree(),
        params.plain_modulus().value(),
        params.plain_modulus().bits(),
        chain.moduli().iter().map(|m| m.value()).collect::<Vec<_>>(),
        params.limbs(),
        chain.total_bits(),
        params.delta()
    );

    // Key material: secret/public keys plus a Galois key for rotation by 1.
    let mut keygen = KeyGenerator::from_seed(params.clone(), 7);
    let pk = keygen.public_key()?;
    let keys = keygen.galois_keys_for_steps(&[1])?;

    let encoder = BatchEncoder::new(params.clone());
    let mut encryptor = Encryptor::from_public_key(pk, 1);
    let decryptor = Decryptor::new(keygen.secret_key().clone());
    let evaluator = Evaluator::new(params.clone());

    // Encode: one ciphertext packs n = 4096 values (SIMD slots).
    let data: Vec<u64> = (0..10).map(|i| 100 + i).collect();
    let weights: Vec<u64> = (0..10).map(|i| i + 1).collect();
    let ct = encryptor.encrypt(&encoder.encode(&data)?)?;
    println!(
        "\nfresh ciphertext:       worst-case model {:>5.1} bits | measured {:>5.1} bits",
        ct.budget_bits(),
        decryptor.invariant_noise_budget(&ct)?
    );

    // HE_Add: slot-wise addition.
    let doubled = evaluator.add(&ct, &ct)?;
    println!(
        "after HE_Add:           worst-case model {:>5.1} bits | measured {:>5.1} bits",
        doubled.budget_bits(),
        decryptor.invariant_noise_budget(&doubled)?
    );

    // HE_Mult (pt-ct): slot-wise multiplication by plaintext weights.
    let w = evaluator.prepare_plaintext(&encoder.encode(&weights)?)?;
    let product = evaluator.mul_plain(&doubled, &w)?;
    println!(
        "after HE_Mult:          worst-case model {:>5.1} bits | measured {:>5.1} bits",
        product.budget_bits(),
        decryptor.invariant_noise_budget(&product)?
    );

    // HE_Rotate: cyclic slot rotation (Galois automorphism + key switch).
    let rotated = evaluator.rotate_rows(&product, 1, &keys)?;
    println!(
        "after HE_Rotate:        worst-case model {:>5.1} bits | measured {:>5.1} bits",
        rotated.budget_bits(),
        decryptor.invariant_noise_budget(&rotated)?
    );

    // Decrypt + decode and check: slot i now holds 2*(100+i+1)*(i+2).
    let out = encoder.decode(&decryptor.decrypt_checked(&rotated)?);
    // Note how the worst-case model goes negative while measurement shows
    // ample headroom — the over-provisioning §IV-B's statistical model
    // eliminates.
    println!(
        "\nslot 0 after rotate = {} (expect {})",
        out[0],
        2 * 101 * 2
    );
    for (i, &slot) in out.iter().enumerate().take(9) {
        assert_eq!(slot, 2 * (100 + i as u64 + 1) * (i as u64 + 2));
    }
    println!("all slots verified against plaintext computation ✓");
    Ok(())
}
