//! Accelerator design-space exploration for a workload of your choice:
//! tune HE parameters per layer, map the network onto PE/Lane
//! configurations, and print the power-latency Pareto frontier at 5 nm.
//!
//! Run with: `cargo run --release --example accelerator_dse -- lenet5`
//! (models: lenet300, lenet5, alexnet, vgg16, resnet50)

use cheetah::accel::explore::{explore, ArchSweep};
use cheetah::accel::workload::NetworkWork;
use cheetah::accel::NODE_5NM;
use cheetah::core::ptune::{tune_network, NoiseRegime, TuneSpace};
use cheetah::core::{QuantSpec, Schedule};
use cheetah::nn::models;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "lenet5".into());
    let net = match which.as_str() {
        "lenet300" => models::lenet300(),
        "alexnet" => models::alexnet(),
        "vgg16" => models::vgg16(),
        "resnet50" => models::resnet50(),
        _ => models::lenet5(),
    };

    // 1. HE-PTune: per-layer parameters.
    let quant = QuantSpec::default();
    let layers = net.linear_layers();
    let t_bits: Vec<u32> = layers
        .iter()
        .map(|l| quant.statistical_plain_bits(l))
        .collect();
    let tuned = match tune_network(
        &layers,
        &t_bits,
        Schedule::PartialAligned,
        NoiseRegime::Statistical,
        &TuneSpace::default(),
    ) {
        Ok(tuned) => tuned,
        Err(err) => {
            eprintln!("{}: no feasible HE parameters: {err}", net.name);
            std::process::exit(1);
        }
    };

    // 2. Map to an accelerator workload.
    let work = NetworkWork::from_tuned(&net.name, &tuned);
    println!(
        "{}: {} output ciphertexts, {:.0} partials ({:.1} per CT)\n",
        net.name,
        work.total_out_cts(),
        work.total_partials(),
        work.mean_partials_per_out_ct()
    );

    // 3. Sweep PEs x Lanes and print the frontier.
    let outcome = explore(&work, &ArchSweep::default(), NODE_5NM);
    println!(
        "{:>5} {:>6} {:>13} {:>10} {:>11} {:>9}",
        "PEs", "lanes", "latency(ms)", "power(W)", "area(mm2)", "laneUtil"
    );
    for r in &outcome.frontier {
        println!(
            "{:>5} {:>6} {:>13.2} {:>10.2} {:>11.0} {:>8.0}%",
            r.pes,
            r.lanes_per_pe,
            r.latency_s * 1e3,
            r.power_w,
            r.area_mm2,
            r.mean_lane_utilization * 100.0
        );
    }
    if let Some(best) = outcome.fastest() {
        println!(
            "\nfastest design: {} PEs x {} lanes at {:.2} ms",
            best.pes,
            best.lanes_per_pe,
            best.latency_s * 1e3
        );
    }
}
