//! End-to-end private inference: the Gazelle protocol of §II-A running a
//! small CNN with real BFV on the linear layers, additive masking, and a
//! simulated garbled circuit for ReLU/pooling.
//!
//! Run with: `cargo run --release --example private_inference`

use cheetah::bfv::BfvParams;
use cheetah::core::Schedule;
use cheetah::nn::inference::{infer, random_input};
use cheetah::nn::models::tiny_cnn;
use cheetah::nn::Weights;
use cheetah::protocol::PrivateInferenceSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The cloud's model (weights private to the cloud) and the client's
    // input (private to the client).
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 2024);
    let input = random_input(&net.input_shape, 3, 4);
    println!(
        "model: {} ({} linear layers)",
        net.name,
        net.linear_layers().len()
    );

    // HE session parameters: wide enough t for the network's worst-case
    // integer range, q ≡ 1 (mod 2n·t).
    let params = BfvParams::builder()
        .degree(4096)
        .plain_bits(18)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()?;

    let mut session =
        PrivateInferenceSession::new(&net, &weights, params, Schedule::PartialAligned, 99)?;
    let (output, transcript) = session.run(&input)?;

    // The reference plaintext inference the client could NOT run (it does
    // not know the weights) — used here only to verify exactness.
    let expected = infer(&net, &weights, &input).output;
    assert_eq!(
        output.data(),
        expected.data(),
        "private inference must be exact"
    );

    println!("\nprediction (4 logits): {:?}", output.data());
    println!("matches plaintext inference exactly ✓");
    println!("\n{transcript}");
    println!(
        "rounds: {}   total communication: {:.1} KiB",
        transcript.rounds(),
        transcript.total_bytes() as f64 / 1024.0
    );
    Ok(())
}
