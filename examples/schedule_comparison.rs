//! Sched-PA vs Sched-IA on real ciphertexts (the Fig. 5 experiment):
//! both schedules compute the same dot product; partial-aligned ordering
//! leaves measurably more noise budget, which HE-PTune converts into
//! faster parameters.
//!
//! Run with: `cargo run --release --example schedule_comparison`

use cheetah::bfv::{BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
use cheetah::core::linear::dot::{
    dot_input_aligned, dot_partial_aligned, ia_required_steps, pa_required_steps,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = 32; // dot-product length
    let params = BfvParams::builder()
        .degree(4096)
        .plain_bits(16)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()?;
    let mut keygen = KeyGenerator::from_seed(params.clone(), 5);
    let pk = keygen.public_key()?;
    let mut steps = pa_required_steps(d);
    steps.extend(ia_required_steps(d));
    let keys = keygen.galois_keys_for_steps(&steps)?;

    let encoder = BatchEncoder::new(params.clone());
    let mut encryptor = Encryptor::from_public_key(pk, 6);
    let decryptor = Decryptor::new(keygen.secret_key().clone());
    let evaluator = Evaluator::new(params);

    let x: Vec<i64> = (0..d as i64).map(|i| i - 16).collect();
    let w: Vec<i64> = (0..d as i64).map(|i| 3 * i - 40).collect();
    let expect: i64 = x.iter().zip(&w).map(|(&a, &b)| a * b).sum();
    let ct = encryptor.encrypt(&encoder.encode_signed(&x)?)?;

    println!("dot product of length {d}: expect {expect}\n");

    evaluator.reset_op_counts();
    let pa = dot_partial_aligned(&ct, &w, &encoder, &evaluator, &keys)?;
    let pa_ops = evaluator.op_counts();
    let pa_out = encoder.decode_signed(&decryptor.decrypt_checked(&pa)?)[0];
    let pa_budget = decryptor.invariant_noise_budget(&pa)?;

    evaluator.reset_op_counts();
    let ia = dot_input_aligned(&ct, &w, &encoder, &evaluator, &keys)?;
    let ia_ops = evaluator.op_counts();
    let ia_out = encoder.decode_signed(&decryptor.decrypt_checked(&ia)?)[0];
    let ia_budget = decryptor.invariant_noise_budget(&ia)?;

    println!("{:<26} {:>10} {:>10}", "", "Sched-PA", "Sched-IA");
    println!("{:<26} {:>10} {:>10}", "result", pa_out, ia_out);
    println!(
        "{:<26} {:>9.1}b {:>9.1}b",
        "remaining noise budget", pa_budget, ia_budget
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "HE_Mult count", pa_ops.mul, ia_ops.mul
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "HE_Rotate count", pa_ops.rotate, ia_ops.rotate
    );
    println!("{:<26} {:>10} {:>10}", "NTT count", pa_ops.ntt, ia_ops.ntt);

    assert_eq!(pa_out, expect);
    assert_eq!(ia_out, expect);
    assert!(pa_budget > ia_budget);
    println!(
        "\nSched-PA retains {:.1} more bits of noise budget — headroom HE-PTune\n\
         spends on faster parameters (the §V mechanism).",
        pa_budget - ia_budget
    );
    Ok(())
}
