//! HE-PTune in action: per-layer BFV parameter tuning for ResNet50,
//! showing how the optimal configuration varies layer by layer (the §IV-C
//! result that a single global parameter set wastes performance).
//!
//! Run with: `cargo run --release --example parameter_tuning`

use cheetah::core::ptune::{tune_layer, NoiseRegime, TuneSpace, NO_WINDOW};
use cheetah::core::{QuantSpec, Schedule};
use cheetah::nn::models;

fn main() {
    let net = models::resnet50();
    let quant = QuantSpec::default();
    let layers = net.linear_layers();
    let space = TuneSpace::default();

    println!(
        "HE-PTune on {} ({} linear layers, {} candidate configs/layer)\n",
        net.name,
        layers.len(),
        space.size()
    );
    println!(
        "{:<14} {:>7} | {:>6} {:>4} {:>4} {:>8} {:>8} | {:>12} {:>8}",
        "layer", "t bits", "n", "q", "A", "W", "l_ct", "cost(mults)", "budget"
    );

    let mut total_cost = 0.0;
    let mut no_window_layers = 0;
    for (layer_idx, layer) in layers.iter().enumerate() {
        let t_bits = quant.statistical_plain_bits(layer);
        let outcome = tune_layer(
            layer,
            t_bits,
            Schedule::PartialAligned,
            NoiseRegime::Statistical,
            &space,
        );
        let best = outcome.best.expect("feasible configuration");
        total_cost += best.int_mults;
        if best.w_dcmp_log2 == NO_WINDOW {
            no_window_layers += 1;
        }
        // Print a representative sample (first 10 + every 8th after).
        if layer_idx < 10 || layer_idx % 8 == 0 {
            println!(
                "{:<14} {:>7} | {:>6} {:>4} 2^{:<2} {:>8} {:>8} | {:>12.3e} {:>7.1}b",
                layer.name(),
                t_bits,
                best.n,
                best.q_bits,
                best.a_dcmp_log2,
                if best.w_dcmp_log2 == NO_WINDOW {
                    "none".to_owned()
                } else {
                    format!("2^{}", best.w_dcmp_log2)
                },
                best.l_ct(),
                best.int_mults,
                best.budget_bits,
            );
        }
    }
    println!(
        "\ntotal tuned cost: {:.3e} integer multiplications",
        total_cost
    );
    println!(
        "{no_window_layers}/{} layers avoid plaintext decomposition entirely \
         (the §V-C Sched-PA claim)",
        layers.len()
    );
}
