//! # cheetah — a reproduction of the Cheetah system (HPCA 2021)
//!
//! *"Cheetah: Optimizing and Accelerating Homomorphic Encryption for
//! Private Inference"* (Reagen et al., arXiv:2006.00505) built as a Rust
//! workspace. This meta-crate re-exports the whole stack:
//!
//! * [`bfv`] — the BFV homomorphic-encryption engine (NTT, keys,
//!   `HE_Add` / `HE_Mult` / `HE_Rotate`, noise measurement);
//! * [`nn`] — DNN layer descriptors, the five benchmark models, and
//!   fixed-point plaintext inference;
//! * [`core`] — the paper's contribution: HE-PTune analytical models and
//!   per-layer parameter tuning, plus the Sched-PA / Sched-IA schedules
//!   (both analytical and on real ciphertexts);
//! * [`protocol`] — the Gazelle-style client/cloud private-inference
//!   round-trip with masking and a simulated garbled circuit;
//! * [`profile`] — kernel profiling and the Fig. 7 limit study;
//! * [`gpu`] — the Fig. 8 GPU batched-NTT study (SIMT model + threaded
//!   host substitute);
//! * [`accel`] — the accelerator architecture: HLS-style kernel cost
//!   models, per-kernel DSE, and the PE/Lane simulator.
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the per-figure evaluation harness.
//!
//! ## The hot path
//!
//! Cheetah's thesis (§IV) is that private inference is decided by the cost
//! of three HE kernels — NTTs, pointwise multiply-accumulate, and
//! key-switching. The software engine keeps those kernels on a
//! zero-allocation, thread-parallel path:
//!
//! * **In-place evaluator ops** — [`bfv::Evaluator`] exposes
//!   `add_assign` / `sub_assign` / `mul_plain_assign` /
//!   `mul_plain_accumulate` / `apply_galois_into` / `rotate_rows_into`,
//!   which draw temporaries from a reusable [`bfv::Scratch`] pool and
//!   perform **zero heap allocations at steady state** (enforced by a
//!   counting-allocator test). The classic allocating API still exists as
//!   thin wrappers over the same kernels.
//! * **Contiguous batches** — [`bfv::PolyBatch`] stores a batch of
//!   polynomials in one contiguous allocation with stride-`n` views and
//!   runs forward/inverse NTTs across worker threads, bit-identically to
//!   the serial path for any thread count.
//! * **Parallel linear layers** — `core`'s `HomConv2d` / `HomFc` split
//!   their rotate-mul-accumulate loops into per-thread chunks (each worker
//!   owns a `Scratch`), merge partial sums deterministically, and keep
//!   exact kernel accounting via the evaluator's atomic [`bfv::OpCounts`].
//!
//! `cargo run --release -p cheetah-bench --bin bench_he_ops` emits
//! `BENCH_he_ops.json` with ns/op for the three operators (allocating vs
//! in-place) and the batched NTT, making the perf trajectory
//! machine-readable across PRs.
//!
//! ```
//! use cheetah::bfv::{BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator};
//!
//! # fn main() -> Result<(), cheetah::bfv::Error> {
//! let params = BfvParams::builder().degree(4096).build()?;
//! let mut keygen = KeyGenerator::from_seed(params.clone(), 1);
//! let pk = keygen.public_key()?;
//! let encoder = BatchEncoder::new(params.clone());
//! let mut enc = Encryptor::from_public_key(pk, 2);
//! let dec = Decryptor::new(keygen.secret_key().clone());
//! let eval = Evaluator::new(params);
//!
//! let ct = enc.encrypt(&encoder.encode(&[21, 2])?)?;
//! let twice = eval.add(&ct, &ct)?;
//! assert_eq!(encoder.decode(&dec.decrypt_checked(&twice)?)[0], 42);
//! # Ok(())
//! # }
//! ```

pub use cheetah_accel as accel;
pub use cheetah_bfv as bfv;
pub use cheetah_core as core;
pub use cheetah_gpu as gpu;
pub use cheetah_nn as nn;
pub use cheetah_profile as profile;
pub use cheetah_protocol as protocol;
pub use cheetah_serve as serve;
