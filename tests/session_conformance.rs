//! End-to-end conformance suite: the first whole-protocol correctness pin
//! (until now only per-op paths were pinned).
//!
//! The tiny-CNN [`PrivateInferenceSession`] runs on all three preset
//! modulus chains (single 60-bit / 2×30 / 3×36, with the session's
//! `A = 2^6` decomposition base), and for each run the suite asserts:
//!
//! * the decrypted prediction equals a cleartext reference network
//!   **bit-exactly**;
//! * every ciphertext message in the transcript matches the byte
//!   accounting at its recorded level: uploads are always full-chain and
//!   ship in the seeded wire format (`limbs·n·8 + 8`: an 8-byte PRNG
//!   seed replaces the whole `c1` component), while masked downloads
//!   stay in the full `2·live·n·8` format and shrink with the planned
//!   level;
//! * every linear layer's *measured* invariant noise sits under the
//!   engine-tracked estimate, which sits under the layer's `noise_after`
//!   planning bound — `measured ≤ tracked ≤ predicted`, per layer, per
//!   preset chain.

use cheetah::bfv::BfvParams;
use cheetah::core::Schedule;
use cheetah::nn::inference::{infer, random_input};
use cheetah::nn::models::tiny_cnn;
use cheetah::nn::Weights;
use cheetah::protocol::PrivateInferenceSession;

const N: usize = 4096;

/// The three preset chains, instantiated with the session's decomposition
/// base (`A = 2^6`; the named `BfvParams::preset_*` constructors keep the
/// builder default `A = 2^20`, whose key-switch additive would exhaust a
/// 32-diagonal FC layer on the 60-bit chains) and the plaintext moduli the
/// session tests established per chain.
fn preset_chains() -> Vec<(&'static str, BfvParams)> {
    let single_60 = BfvParams::builder()
        .degree(N)
        .plain_bits(18)
        .cipher_bits(60)
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    // 30-bit limbs cannot satisfy the Gazelle congruence, so the live
    // `(Q mod t)` rounding term needs the 16-bit t's headroom.
    let rns_2x30 = BfvParams::builder()
        .degree(N)
        .plain_bits(16)
        .moduli_bits(&[30, 30])
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    let rns_3x36 = BfvParams::builder()
        .degree(N)
        .plain_bits(17)
        .moduli_bits(&[36, 36, 36])
        .a_dcmp(1 << 6)
        .build()
        .unwrap();
    vec![
        ("single_60", single_60),
        ("rns_2x30", rns_2x30),
        ("rns_3x36", rns_3x36),
    ]
}

/// Ciphertexts per masked download of linear layer `i` of the tiny CNN:
/// the conv layer ships one ciphertext per output channel, FC layers one.
fn cts_per_download(layer: usize) -> usize {
    match layer {
        0 => 2, // conv1: co = 2
        _ => 1,
    }
}

/// Parses the `lvlN` suffix of a masked-download label.
fn level_of(label: &str) -> usize {
    let idx = label.find("lvl").expect("download labels carry a level");
    label[idx + 3..].trim().parse().expect("level parses")
}

#[test]
fn tiny_cnn_conformance_on_all_preset_chains() {
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 2024);
    let input = random_input(&net.input_shape, 3, 2025);
    let expect = infer(&net, &weights, &input).output;

    for (name, params) in preset_chains() {
        let limbs = params.limbs();
        let mut session = PrivateInferenceSession::new(
            &net,
            &weights,
            params.clone(),
            Schedule::PartialAligned,
            7,
        )
        .unwrap();
        // Conformance instrumentation: measure true invariant noise per
        // layer (off by default — it costs a decryption per ciphertext).
        session.enable_noise_measurement();
        let (output, transcript) = session.run(&input).unwrap();

        // 1. Bit-exact against the cleartext reference network.
        assert_eq!(
            output.data(),
            expect.data(),
            "{name}: private inference diverged from cleartext reference"
        );

        // 2. Transcript byte totals match the wire accounting (seeded
        // uploads, full-format downloads).
        let mut uploads = 0;
        let mut downloads = 0;
        let mut accounted = 0usize;
        for m in transcript.messages() {
            if m.label.contains("enc activations") {
                // Clients always encrypt fresh: full-chain uploads, seeded
                // — one c0 component plus the 8-byte seed standing in for
                // all of c1.
                assert_eq!(
                    m.bytes,
                    cheetah::bfv::wire::SEED_BYTES + limbs * N * 8,
                    "{name}: upload accounting for {}",
                    m.label
                );
                uploads += 1;
                accounted += m.bytes;
            } else if m.label.contains("enc masked outputs") {
                let level = level_of(&m.label);
                assert!(level < limbs, "{name}: level out of range in {}", m.label);
                let live = limbs - level;
                assert_eq!(
                    m.bytes,
                    cts_per_download(downloads) * 2 * live * N * 8,
                    "{name}: download accounting for {}",
                    m.label
                );
                downloads += 1;
                accounted += m.bytes;
            }
        }
        assert_eq!(uploads, 3, "{name}: one upload per linear layer");
        assert_eq!(downloads, 3, "{name}: one download per linear layer");
        assert!(
            accounted <= transcript.total_bytes(),
            "{name}: ciphertext bytes exceed the recorded total"
        );
        assert_eq!(transcript.rounds(), 4, "{name}: setup + 3 linear layers");

        // 3. Per-layer noise conformance: measured ≤ tracked ≤ predicted.
        let reports = session.layer_reports();
        assert_eq!(reports.len(), 3, "{name}: one report per linear layer");
        for r in reports {
            let measured = r
                .measured_noise_log2
                .expect("noise measurement was enabled");
            assert!(
                measured <= r.tracked_bound_log2 + 1e-9,
                "{name} L{}: measured 2^{measured:.1} above engine-tracked 2^{:.1}",
                r.layer,
                r.tracked_bound_log2
            );
            assert!(
                r.tracked_bound_log2 <= r.predicted_bound_log2 + 1e-9,
                "{name} L{} ({}): engine-tracked 2^{:.1} above planned 2^{:.1}",
                r.layer,
                r.plan,
                r.tracked_bound_log2,
                r.predicted_bound_log2
            );
            // FC layers must be running the BSGS reshape (d = 32 and 16).
            if r.layer > 0 {
                assert!(
                    r.plan.contains("bsgs"),
                    "{name} L{}: expected a BSGS plan, got {}",
                    r.layer,
                    r.plan
                );
            }
        }
    }
}

#[test]
fn pruned_tiny_cnn_runs_sparse_plans_with_fewer_keys_and_stays_exact() {
    // Structured pruning flows end to end: the prepared model picks
    // sparse BSGS / live-channel plans, the session generates Galois keys
    // for strictly fewer rotation steps than the dense model, and the
    // decrypted output still matches the cleartext reference on the same
    // pruned weights bit-exactly — on every preset chain.
    use std::sync::Arc;

    use cheetah::protocol::PreparedLayers;

    let net = tiny_cnn();
    let mut weights = Weights::random(&net, 2, 2024);
    weights.prune_to_sparsity(0.6, 31);
    let input = random_input(&net.input_shape, 3, 2025);
    let expect = infer(&net, &weights, &input).output;

    for (name, params) in preset_chains() {
        let dense_steps = {
            let dense = Weights::random(&net, 2, 2024);
            PreparedLayers::new(&net, &dense, params.clone(), Schedule::PartialAligned)
                .unwrap()
                .required_steps()
                .len()
        };
        let prepared = Arc::new(
            PreparedLayers::new(&net, &weights, params.clone(), Schedule::PartialAligned).unwrap(),
        );
        assert!(
            prepared.required_steps().len() < dense_steps,
            "{name}: sparse keygen must shrink ({} vs dense {dense_steps})",
            prepared.required_steps().len()
        );
        let fc_plans: Vec<String> = (1..3).map(|k| prepared.plan_label(k)).collect();
        assert!(
            fc_plans.iter().any(|p| p.contains("sparse")),
            "{name}: pruned FC layers should carry sparse plans, got {fc_plans:?}"
        );

        let mut session =
            cheetah::protocol::PrivateInferenceSession::with_prepared(Arc::clone(&prepared), 7)
                .unwrap();
        let (output, transcript) = session.run(&input).unwrap();
        assert_eq!(
            output.data(),
            expect.data(),
            "{name}: sparse session diverged from cleartext reference"
        );
        assert_eq!(transcript.rounds(), 4);
    }
}

#[test]
fn deep_chain_ships_reduced_levels_with_consistent_reports() {
    // On the 3×36 chain the statistical planner drops every layer at least
    // one level; the reports and the transcript must agree on the level.
    let net = tiny_cnn();
    let weights = Weights::random(&net, 2, 4048);
    let input = random_input(&net.input_shape, 3, 4049);
    let (_, params) = preset_chains().pop().unwrap();
    assert_eq!(params.limbs(), 3);

    let mut session =
        PrivateInferenceSession::new(&net, &weights, params, Schedule::PartialAligned, 11).unwrap();
    let (output, transcript) = session.run(&input).unwrap();
    assert_eq!(output.data(), infer(&net, &weights, &input).output.data());

    let download_levels: Vec<usize> = transcript
        .messages()
        .iter()
        .filter(|m| m.label.contains("enc masked outputs"))
        .map(|m| level_of(&m.label))
        .collect();
    let report_levels: Vec<usize> = session.layer_reports().iter().map(|r| r.level).collect();
    assert_eq!(
        download_levels, report_levels,
        "transcript/report level skew"
    );
    assert!(
        report_levels.iter().all(|&l| l >= 1),
        "every tiny-CNN layer fits below full level on the 3×36 chain: {report_levels:?}"
    );
}
