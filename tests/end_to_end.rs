//! Cross-crate integration tests: the full stack from BFV ciphertexts up
//! to the accelerator simulator, exercised together.

use cheetah::accel::explore::{explore, ArchSweep};
use cheetah::accel::workload::NetworkWork;
use cheetah::accel::{AcceleratorConfig, Simulator, NODE_40NM, NODE_5NM};
use cheetah::bfv::BfvParams;
use cheetah::core::ptune::{tune_network, NoiseRegime, TuneSpace};
use cheetah::core::speedup::evaluate_model;
use cheetah::core::{QuantSpec, Schedule};
use cheetah::nn::inference::{infer, random_input};
use cheetah::nn::models;
use cheetah::nn::Weights;
use cheetah::profile::{limit_study, network_breakdown, KernelTimer};
use cheetah::protocol::PrivateInferenceSession;

fn tuned(
    net: &cheetah::nn::Network,
) -> Vec<(cheetah::nn::LinearLayer, cheetah::core::DesignPoint)> {
    let quant = QuantSpec::default();
    let layers = net.linear_layers();
    let t_bits: Vec<u32> = layers
        .iter()
        .map(|l| quant.statistical_plain_bits(l))
        .collect();
    tune_network(
        &layers,
        &t_bits,
        Schedule::PartialAligned,
        NoiseRegime::Statistical,
        &TuneSpace::default(),
    )
    .expect("the default tune space must stay feasible for the zoo models")
}

#[test]
fn private_inference_matches_plaintext_for_both_schedules() {
    let net = models::tiny_cnn();
    let weights = Weights::random(&net, 2, 808);
    let input = random_input(&net.input_shape, 3, 809);
    let expect = infer(&net, &weights, &input).output;

    for schedule in [Schedule::PartialAligned, Schedule::InputAligned] {
        let params = BfvParams::builder()
            .degree(4096)
            .plain_bits(18)
            .cipher_bits(60)
            .a_dcmp(1 << 6)
            .build()
            .unwrap();
        let mut session =
            PrivateInferenceSession::new(&net, &weights, params, schedule, 4242).unwrap();
        let (out, transcript) = session.run(&input).unwrap();
        assert_eq!(out.data(), expect.data(), "{schedule}");
        assert!(transcript.total_bytes() > 0);
    }
}

#[test]
fn tuning_profile_and_limit_study_compose() {
    // HE-PTune -> measured kernel times -> breakdown -> limit study: the
    // §IV -> §VI pipeline end to end on LeNet5.
    let net = models::lenet5();
    let tuned = tuned(&net);
    let mut timer = KernelTimer::new(3);
    let breakdown = network_breakdown(&tuned, &mut timer);
    assert!(breakdown.total_s() > 0.0);

    let study = limit_study(&breakdown, breakdown.total_s() / 1000.0);
    assert!(study.final_latency_s <= breakdown.total_s() / 1000.0 * 1.001);
    // NTT must need at least as much acceleration as the adds.
    let ntt = study.factor(cheetah::profile::Kernel::Ntt);
    let add = study.factor(cheetah::profile::Kernel::Add);
    assert!(ntt >= add);
}

#[test]
fn tuning_to_accelerator_pipeline() {
    // HE-PTune -> workload -> simulator -> DSE: the §IV -> §VIII pipeline.
    let net = models::lenet5();
    let work = NetworkWork::from_tuned(&net.name, &tuned(&net));
    let outcome = explore(&work, &ArchSweep::small(), NODE_5NM);
    assert!(!outcome.frontier.is_empty());

    // Simulating the same workload twice is deterministic.
    let cfg = AcceleratorConfig::new(8, 64);
    let a = Simulator::new(cfg).simulate(&work, NODE_40NM);
    let b = Simulator::new(AcceleratorConfig::new(8, 64)).simulate(&work, NODE_40NM);
    assert_eq!(a.latency_s, b.latency_s);
    assert_eq!(a.area_mm2, b.area_mm2);
}

#[test]
fn speedup_hierarchy_holds_for_every_benchmark() {
    // Across all five models: Gazelle >= HE-PTune >= HE-PTune + Sched-PA
    // in cost, i.e. speedups >= 1 and PA adds on top of PTune.
    let quant = QuantSpec::default();
    let space = TuneSpace::default();
    for net in [models::lenet300(), models::lenet5(), models::alexnet()] {
        let s = evaluate_model(&net, &quant, &space);
        assert!(
            s.speedup_ptune() >= 1.0,
            "{}: {}",
            net.name,
            s.speedup_ptune()
        );
        assert!(
            s.speedup_combined() >= s.speedup_ptune(),
            "{}: combined {} < ptune {}",
            net.name,
            s.speedup_combined(),
            s.speedup_ptune()
        );
    }
}

#[test]
fn accelerator_beats_cpu_by_orders_of_magnitude() {
    // The headline claim, end to end: the simulated accelerator runs the
    // HE workload orders of magnitude faster than the measured CPU kernels
    // would.
    let net = models::lenet5();
    let tuned = tuned(&net);
    let mut timer = KernelTimer::new(3);
    let cpu_s = network_breakdown(&tuned, &mut timer).total_s();

    let work = NetworkWork::from_tuned(&net.name, &tuned);
    let accel = Simulator::new(AcceleratorConfig::new(8, 64)).simulate(&work, NODE_5NM);
    let speedup = cpu_s / accel.latency_s;
    assert!(
        speedup > 100.0,
        "accelerator speedup over CPU only {speedup:.0}x (cpu {cpu_s:.2}s vs accel {:.4}s)",
        accel.latency_s
    );
}
