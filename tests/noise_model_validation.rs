//! §IV-B validation, reproduced: the paper validates its noise model
//! against SEAL measurements across parameter settings ("worst-case errors
//! are within 1 bit in the low-remaining noise budget region"). Here the
//! Table III model is validated against the real engine's measured
//! invariant noise across a grid of parameter settings and operator
//! chains.

use cheetah::bfv::{
    BatchEncoder, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator, SecurityLevel,
};

struct Session {
    params: BfvParams,
    encoder: BatchEncoder,
    enc: Encryptor,
    dec: Decryptor,
    eval: Evaluator,
    keys: cheetah::bfv::GaloisKeys,
}

fn session(n: usize, t_bits: u32, q_bits: u32, a_log: u32, seed: u64) -> Session {
    let params = BfvParams::builder()
        .degree(n)
        .plain_bits(t_bits)
        .cipher_bits(q_bits)
        .a_dcmp(1 << a_log)
        .security(SecurityLevel::None)
        .build()
        .unwrap();
    let mut kg = KeyGenerator::from_seed(params.clone(), seed);
    let pk = kg.public_key().unwrap();
    let keys = kg.galois_keys_for_steps(&[1, 2]).unwrap();
    Session {
        encoder: BatchEncoder::new(params.clone()),
        enc: Encryptor::from_public_key(pk, seed ^ 1),
        dec: Decryptor::new(kg.secret_key().clone()),
        eval: Evaluator::new(params.clone()),
        keys,
        params,
    }
}

/// The worst-case model must upper-bound measured noise for every operator
/// chain at every parameter point in the grid.
#[test]
fn model_bounds_measurement_across_parameter_grid() {
    let mut checked = 0;
    for (n, q_bits) in [(2048usize, 54u32), (4096, 60), (8192, 60)] {
        for t_bits in [17u32, 18, 20] {
            for a_log in [6u32, 12, 20] {
                let mut s = session(n, t_bits, q_bits, a_log, 7000 + checked);
                let values: Vec<u64> = (0..64).collect();
                let ct = s.enc.encrypt(&s.encoder.encode(&values).unwrap()).unwrap();
                let w = s
                    .eval
                    .prepare_plaintext(&s.encoder.encode(&[5; 64]).unwrap())
                    .unwrap();

                // Chain: mult -> rotate -> add(self) — all three operators.
                let m = s.eval.mul_plain(&ct, &w).unwrap();
                let r = s.eval.rotate_rows(&m, 1, &s.keys).unwrap();
                let a = s.eval.add(&r, &r).unwrap();

                for (label, c) in [("fresh", &ct), ("mult", &m), ("rotate", &r), ("add", &a)] {
                    let measured = s.dec.invariant_noise(c).unwrap() as f64;
                    let bound = c.noise().bound_log2;
                    assert!(
                        measured.max(1.0).log2() <= bound + 1e-9,
                        "n={n} t={t_bits} q={q_bits} A=2^{a_log} {label}: \
                         measured 2^{:.1} > bound 2^{:.1}",
                        measured.log2(),
                        bound
                    );
                }
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 27);
}

/// The statistical (IBDG) estimate should sit between the measured noise
/// and the worst-case bound: tighter than worst case, but still safe for
/// the measured reality (with the 1e-10 provisioning factor).
#[test]
fn statistical_estimate_is_tight_but_safe() {
    let mut s = session(4096, 17, 60, 12, 9001);
    let values: Vec<u64> = (0..128).map(|i| i * 7).collect();
    let ct = s.enc.encrypt(&s.encoder.encode(&values).unwrap()).unwrap();
    let w = s
        .eval
        .prepare_plaintext(&s.encoder.encode(&vec![9u64; 128]).unwrap())
        .unwrap();
    let m = s.eval.mul_plain(&ct, &w).unwrap();

    let measured_budget = s.dec.invariant_noise_budget(&m).unwrap();
    let worst_budget = m.noise().budget_bits_worst(&s.params);
    let stat_budget = m.noise().budget_bits_statistical(&s.params);

    assert!(
        stat_budget > worst_budget,
        "statistical {stat_budget:.1} must be less conservative than worst {worst_budget:.1}"
    );
    assert!(
        measured_budget >= stat_budget - 1.0,
        "measured {measured_budget:.1} must not be materially below statistical {stat_budget:.1}"
    );
}

/// The RNS-native key-switch noise term: the model now charges
/// `l_ct·A·B·n/2` with `l_ct = Σ_i ceil(log_A q_i)` per-limb digits. The
/// measured invariant noise must stay below the model bound for every
/// preset (1, 2, and 3 limbs), on both the direct and the hoisted rotation
/// paths, including a chain of rotations.
#[test]
fn rotate_noise_model_bounds_measurement_for_every_preset() {
    for (name, params) in BfvParams::presets(4096).unwrap() {
        let mut kg = KeyGenerator::from_seed(params.clone(), 4242);
        let pk = kg.public_key().unwrap();
        let keys = kg.galois_keys_for_steps(&[1, 2, 3]).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, 4243);
        let dec = Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(params.clone());

        let values: Vec<u64> = (0..256).map(|i| i * 3 % 500).collect();
        let ct = enc.encrypt(&encoder.encode(&values).unwrap()).unwrap();

        let check = |label: &str, c: &cheetah::bfv::Ciphertext| {
            let measured = dec.invariant_noise(c).unwrap() as f64;
            let bound = c.noise().bound_log2;
            assert!(
                measured.max(1.0).log2() <= bound + 1e-9,
                "{name} {label}: measured 2^{:.1} > bound 2^{:.1}",
                measured.log2(),
                bound
            );
        };

        let direct = eval.rotate_rows(&ct, 1, &keys).unwrap();
        check("rotate", &direct);

        let hoisted = eval.hoist(&ct).unwrap();
        for step in [1i64, 2, 3] {
            let h = eval.rotate_hoisted(&ct, &hoisted, step, &keys).unwrap();
            check("rotate_hoisted", &h);
            // Model charges the same per-rotation additive term on both
            // paths.
            assert_eq!(h.noise().bound_log2, direct.noise().bound_log2);
        }

        // A dependent chain keeps accumulating the additive term.
        let mut cur = direct;
        for _ in 0..3 {
            cur = eval.rotate_rows(&cur, 2, &keys).unwrap();
            check("rotate chain", &cur);
        }
    }
}

/// The `mod_switch` transition of the noise model: dropping a limb divides
/// the invariant noise by the dropped prime and adds the rounding terms
/// (`(Q' mod t) + 1 + (n+1)/2`). Measured noise must stay below the model
/// bound at *every* level of every multi-limb preset, through an operator
/// chain — and the bound must actually fall when a limb is dropped from a
/// worked ciphertext (the noise really does shrink with the modulus).
#[test]
fn mod_switch_noise_model_bounds_measurement_for_every_preset() {
    for (name, params) in BfvParams::presets(4096).unwrap() {
        if params.max_level() == 0 {
            continue; // single-limb: level-0-only
        }
        let mut kg = KeyGenerator::from_seed(params.clone(), 6060);
        let pk = kg.public_key().unwrap();
        let keys = kg.galois_keys_for_steps(&[1]).unwrap();
        let encoder = BatchEncoder::new(params.clone());
        let mut enc = Encryptor::from_public_key(pk, 6061);
        let dec = Decryptor::new(kg.secret_key().clone());
        let eval = Evaluator::new(params.clone());

        let vals: Vec<u64> = (0..128).map(|i| i * 17 % 4000).collect();
        let ct = enc.encrypt(&encoder.encode(&vals).unwrap()).unwrap();
        let w = enc_weights(&eval, &encoder);
        let worked = eval
            .rotate_rows(&eval.mul_plain(&ct, &w).unwrap(), 1, &keys)
            .unwrap();
        let before = dec.invariant_noise(&worked).unwrap() as f64;

        let mut cur = worked;
        for level in 1..params.levels() {
            cur = eval.mod_switch_to_next(&cur).unwrap();
            assert_eq!(cur.level(), level);
            let measured = dec.invariant_noise(&cur).unwrap() as f64;
            let bound = cur.noise().bound_log2;
            assert!(
                measured.max(1.0).log2() <= bound + 1e-9,
                "{name} level {level}: measured 2^{:.1} > bound 2^{:.1}",
                measured.log2(),
                bound
            );
            // The dropped limb really divides the noise: measured noise
            // falls well below the pre-switch measurement once the limb's
            // ~30+ bits are gone (rounding terms are orders smaller).
            assert!(
                measured < before,
                "{name} level {level}: switch did not shrink noise \
                 ({measured:.3e} vs {before:.3e})"
            );
        }
    }
}

fn enc_weights(eval: &Evaluator, encoder: &BatchEncoder) -> cheetah::bfv::PreparedPlaintext {
    eval.prepare_plaintext(&encoder.encode(&[7; 128]).unwrap())
        .unwrap()
}

/// Repeated rotations accumulate additive noise roughly linearly — the
/// Table III structure, observed on real ciphertexts.
#[test]
fn rotation_noise_accumulates_additively() {
    let mut s = session(4096, 17, 60, 8, 5150);
    let ct = s
        .enc
        .encrypt(&s.encoder.encode(&[1, 2, 3, 4]).unwrap())
        .unwrap();
    let mut noise = Vec::new();
    let mut cur = ct;
    for _ in 0..6 {
        cur = s.eval.rotate_rows(&cur, 1, &s.keys).unwrap();
        noise.push(s.dec.invariant_noise(&cur).unwrap() as f64);
    }
    // Linear-ish growth: noise after 6 rotations is within ~12x of the
    // first rotation's noise (multiplicative growth would be astronomical).
    assert!(noise[5] <= 12.0 * noise[0], "noise grew {noise:?}");
    // And it does grow.
    assert!(noise[5] >= noise[0]);
}

/// Budget loss per operator matches the paper's ordering: multiplication
/// consumes many bits, rotation few, addition ~one.
#[test]
fn per_operator_budget_consumption_ordering() {
    let mut s = session(4096, 17, 60, 12, 777);
    let ct = s.enc.encrypt(&s.encoder.encode(&[6; 32]).unwrap()).unwrap();
    let w = s
        .eval
        .prepare_plaintext(&s.encoder.encode(&[3; 32]).unwrap())
        .unwrap();
    let b0 = s.dec.invariant_noise_budget(&ct).unwrap();

    let after_add = s.eval.add(&ct, &ct).unwrap();
    let after_rot = s.eval.rotate_rows(&ct, 1, &s.keys).unwrap();
    let after_mul = s.eval.mul_plain(&ct, &w).unwrap();

    let add_cost = b0 - s.dec.invariant_noise_budget(&after_add).unwrap();
    let rot_cost = b0 - s.dec.invariant_noise_budget(&after_rot).unwrap();
    let mul_cost = b0 - s.dec.invariant_noise_budget(&after_mul).unwrap();

    assert!(add_cost <= 1.5, "add cost {add_cost:.2} bits");
    assert!(
        mul_cost > rot_cost,
        "mul {mul_cost:.1} vs rot {rot_cost:.1}"
    );
    assert!(
        mul_cost > 10.0,
        "mul should consume many bits: {mul_cost:.1}"
    );
}
