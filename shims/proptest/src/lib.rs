//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro, integer-range / tuple / [`Just`] / [`collection::vec`]
//! / [`any`] / `prop_oneof!` strategies, `prop_map`, the `prop_assert*`
//! macros, and [`ProptestConfig::with_cases`]. No shrinking: a failing
//! case panics with the offending values' debug output via the assert
//! message. Each test's RNG seed is derived from the test name, so runs
//! are reproducible.

use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// RNG driving generation (the workspace's deterministic `StdRng`).
pub type TestRng = rand::rngs::StdRng;

/// Derives a per-test deterministic RNG from the test's name.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Object-safe strategy view (used by `prop_oneof!`).
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> T {
        self.generate(rng)
    }
}

/// Boxes a strategy arm for [`Union`] (helper for `prop_oneof!`).
pub fn union_arm<T, S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn DynStrategy<T>> {
    Box::new(s)
}

/// Uniform choice between several strategies of one value type.
pub struct Union<T> {
    arms: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-domain strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

/// Strategy over a type's whole value domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` independent draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // The closure gives `prop_assume!` an early-exit channel.
                #[allow(clippy::redundant_closure_call)]
                let _skipped = (|| -> ::core::option::Option<()> {
                    $body
                    ::core::option::Option::Some(())
                })();
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current generated case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in -5i64..=5) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuple_and_map(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn oneof_and_vec(
            w in prop_oneof![Just(8usize), Just(16)],
            v in crate::collection::vec(0i64..4, 6),
        ) {
            prop_assert!(w == 8 || w == 16);
            prop_assert_eq!(v.len(), 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn any_is_deterministic_per_name() {
        let mut r1 = crate::test_rng("same");
        let mut r2 = crate::test_rng("same");
        let a: u64 = crate::Arbitrary::arbitrary(&mut r1);
        let b: u64 = crate::Arbitrary::arbitrary(&mut r2);
        assert_eq!(a, b);
    }
}
