//! Offline stand-in for `crossbeam`'s scoped threads, backed by
//! `std::thread::scope` (see `shims/README.md`).
//!
//! Only the `crossbeam::scope(|s| { s.spawn(|_| …); … })` surface is
//! provided — structured fork/join over borrowed data, which is all this
//! workspace uses crossbeam for.

pub use thread::{scope, Scope, ScopedJoinHandle};

/// Scoped-thread API, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Err` carries a child-thread panic payload.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; `spawn` borrows from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> ScopeResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. As in crossbeam, the closure receives
        /// the scope so workers can themselves spawn.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; joins all spawned threads before returning.
    ///
    /// Unlike `std::thread::scope`, child panics are captured and returned
    /// as `Err` (crossbeam semantics) rather than propagated — except
    /// panics from *unjoined* threads, which std re-raises at scope exit
    /// and we convert into the `Err` payload via `catch_unwind`.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        super::scope(|s| {
            let (lo, hi) = partial.split_at_mut(1);
            let d = &data;
            s.spawn(move |_| lo[0] = d[..2].iter().sum());
            s.spawn(move |_| hi[0] = d[2..].iter().sum());
        })
        .unwrap();
        assert_eq!(partial, [3, 7]);
    }

    #[test]
    fn child_panic_is_captured() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            let out = &out;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    out.store(99, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(out.load(std::sync::atomic::Ordering::SeqCst), 99);
    }
}
