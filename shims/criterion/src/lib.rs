//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Provides the macro + type surface the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, and `BatchSize`. Measurement is a short adaptive
//! wall-clock loop printed as ns/iter — a smoke-bench, not a statistics
//! engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers resolve.
pub use std::hint::black_box;

/// How per-iteration setup output is batched (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs timing loops for one benchmark.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
}

/// Total wall-clock budget per benchmark (keep CI cheap).
const BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine` in a loop until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: one timed call decides the loop shape.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` with untimed fresh input from `setup` each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

fn report(group: Option<&str>, id: &str, ns: f64) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if ns >= 1e6 {
        println!("bench {name:<50} {:.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("bench {name:<50} {:.3} µs/iter", ns / 1e3);
    } else {
        println!("bench {name:<50} {ns:.1} ns/iter");
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(Some(&self.name), &id.to_string(), b.ns_per_iter);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), b.ns_per_iter);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(None, id, b.ns_per_iter);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
