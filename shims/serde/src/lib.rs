//! Offline stand-in for `serde`'s derive macros (see `shims/README.md`).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no call sites
//! serialize anything yet), so these derives expand to nothing. When a
//! real registry is available, swapping this shim for the real `serde`
//! re-enables the generated impls without touching any source file.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
