//! Offline stand-in for the `rand` crate (API subset used by this
//! workspace — see `shims/README.md`).
//!
//! `StdRng` is a xoshiro256** generator seeded through SplitMix64. The
//! sequences differ from upstream `rand`'s ChaCha12-based `StdRng`; the
//! workspace only relies on per-seed determinism and distribution shape.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from OS-ish entropy (time + ASLR noise).
    fn from_os_rng() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack_probe = &t as *const u64 as u64;
        Self::seed_from_u64(t ^ stack_probe.rotate_left(32))
    }
}

/// High-level sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                (self.start as $u).wrapping_add(uniform_below(rng, span as u64) as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                // span == 0 encodes the full domain of the type.
                (lo as $u).wrapping_add(uniform_below(rng, span as u64) as $u) as $t
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// Uniform value in `[0, span)`; `span == 0` means the full 64-bit domain.
/// Uses 128-bit multiply-shift (Lemire) with one widening retry loop kept
/// out of the hot path — bias-free without division.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// xoshiro256** generator (Blackman & Vigna), SplitMix64-seeded.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 to spread a 64-bit seed over the 256-bit state.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl StdRng {
    /// Convenience constructor matching `SeedableRng::seed_from_u64`.
    pub fn new(seed: u64) -> Self {
        <Self as SeedableRng>::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.random_range(-4..=4);
            assert!((-4..=4).contains(&y));
            let z: u8 = rng.random_range(0..3u8);
            assert!(z < 3);
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        // Must not panic or hang on the degenerate full-span encoding.
        let _: u64 = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
