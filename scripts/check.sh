#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify.
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh quick    # skip the release build (debug tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy --features simd -D warnings"
# The vector backends are feature-gated off by default; lint them too so
# the simd build can't rot between benches.
cargo clippy -p cheetah-bfv -p cheetah-bench --features cheetah-bfv/simd --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release

    echo "==> bench_he_ops smoke (JSON key regression gate)"
    smoke_json=$(mktemp /tmp/bench_he_ops.XXXXXX.json)
    BENCH_SMOKE=1 cargo run --release -q -p cheetah-bench --bin bench_he_ops "$smoke_json" >/dev/null
    # Every key present in the committed BENCH_he_ops.json must still be
    # emitted — losing a key means the bench silently dropped coverage.
    json_keys() { grep -o '"[a-zA-Z0-9_]*":' "$1" | sort -u; }
    missing=$(comm -23 <(json_keys BENCH_he_ops.json) <(json_keys "$smoke_json"))
    if [[ -n "$missing" ]]; then
        echo "FAIL: bench_he_ops no longer emits these BENCH_he_ops.json keys:"
        echo "$missing"
        rm -f "$smoke_json"
        exit 1
    fi
    rm -f "$smoke_json"

    echo "==> BSGS regression gate (committed non-smoke BENCH_he_ops.json)"
    # The committed JSON is a full (non-smoke) run: the BSGS FC layer must
    # beat the diagonal path on the 3-limb preset, else the headline
    # optimization has regressed. (Smoke-run numbers are too noisy to
    # gate, so the check reads the committed file.)
    json_val() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | awk '{print $2}'; }
    fc_diag=$(json_val BENCH_he_ops.json l3_fc_diag)
    fc_bsgs=$(json_val BENCH_he_ops.json l3_fc_bsgs)
    if [[ -z "$fc_diag" || -z "$fc_bsgs" ]]; then
        echo "FAIL: BENCH_he_ops.json lacks l3_fc_diag / l3_fc_bsgs"
        exit 1
    fi
    if ! awk -v b="$fc_bsgs" -v d="$fc_diag" 'BEGIN { exit !(b < d) }'; then
        echo "FAIL: committed l3_fc_bsgs ($fc_bsgs ns) is not faster than l3_fc_diag ($fc_diag ns)"
        exit 1
    fi

    echo "==> sparse/pow2 FC regression gate (committed non-smoke BENCH_he_ops.json)"
    # Weight-structure plans must keep paying: a 90%-pruned FC layer's
    # SparseBsgsPlan and the pow2 (50%-sparse, scale-factored) layer must
    # both beat the dense BSGS plan on the 3-limb preset — the rotations
    # and mask multiplies the structure analyzer skips are real time.
    fc_sparse90=$(json_val BENCH_he_ops.json l3_fc_bsgs_sparse90)
    fc_pow2=$(json_val BENCH_he_ops.json l3_fc_pow2)
    if [[ -z "$fc_sparse90" || -z "$fc_pow2" ]]; then
        echo "FAIL: BENCH_he_ops.json lacks l3_fc_bsgs_sparse90 / l3_fc_pow2"
        exit 1
    fi
    if ! awk -v s="$fc_sparse90" -v b="$fc_bsgs" 'BEGIN { exit !(s < b) }'; then
        echo "FAIL: committed l3_fc_bsgs_sparse90 ($fc_sparse90 ns) is not faster than dense l3_fc_bsgs ($fc_bsgs ns)"
        exit 1
    fi
    if ! awk -v p="$fc_pow2" -v b="$fc_bsgs" 'BEGIN { exit !(p < b) }'; then
        echo "FAIL: committed l3_fc_pow2 ($fc_pow2 ns) is not faster than dense l3_fc_bsgs ($fc_bsgs ns)"
        exit 1
    fi

    echo "==> hybrid key-switch regression gate (committed non-smoke BENCH_he_ops.json)"
    # Special-prime hybrid rotation vs its equal-total-plane-count digit
    # twin: hybrid_1x54 (1 data limb + P, two planes) against rns_2x30
    # (two data limbs). Fewer transforms (9 vs 10) and a quarter of the
    # key-switch pointwise work — if the committed full run ever shows the
    # digit twin winning, the hybrid datapath has regressed. The 3-plane
    # pair (l3_rotate_hybrid vs l3_rotate) is emitted and tracked but not
    # gated: its 18-vs-21 transform margin is within what the exact
    # P-rescale's multi-word arithmetic costs, so it trades places with
    # hardware.
    rot_hybrid=$(json_val BENCH_he_ops.json l2_rotate_hybrid)
    rot_digit=$(json_val BENCH_he_ops.json l2_rotate)
    if [[ -z "$rot_hybrid" || -z "$rot_digit" ]]; then
        echo "FAIL: BENCH_he_ops.json lacks l2_rotate_hybrid / l2_rotate"
        exit 1
    fi
    if ! awk -v h="$rot_hybrid" -v d="$rot_digit" 'BEGIN { exit !(h < d) }'; then
        echo "FAIL: committed l2_rotate_hybrid ($rot_hybrid ns) is not faster than its digit twin l2_rotate ($rot_digit ns)"
        exit 1
    fi

    echo "==> SIMD kernel regression gate (committed non-smoke BENCH_he_ops.json)"
    # The committed JSON is a full `--features simd` run: the unsuffixed
    # keys are pinned to the forced-scalar reference, the `_simd` twins
    # run the runtime-detected backend. The vectorized NTT roundtrip and
    # the 2/3-limb rotations must beat their scalar pins — these margins
    # are decisive even on the 1-core CI box. The `l1_rotate` pair is
    # emitted and tracked but not gated: a single-limb rotation is
    # dominated by key-switch bookkeeping, so its SIMD margin is inside
    # run-to-run noise.
    for pair in "ntt ntt_simd" "l2_rotate l2_rotate_simd" "l3_rotate l3_rotate_simd"; do
        set -- $pair
        scalar=$(json_val BENCH_he_ops.json "$1")
        vector=$(json_val BENCH_he_ops.json "$2")
        if [[ -z "$scalar" || -z "$vector" ]]; then
            echo "FAIL: BENCH_he_ops.json lacks $1 / $2"
            exit 1
        fi
        if ! awk -v v="$vector" -v s="$scalar" 'BEGIN { exit !(v <= s) }'; then
            echo "FAIL: committed $2 ($vector ns) is slower than its scalar pin $1 ($scalar ns)"
            exit 1
        fi
    done

    echo "==> bench_throughput smoke (JSON key regression gate)"
    smoke_json=$(mktemp /tmp/bench_throughput.XXXXXX.json)
    BENCH_SMOKE=1 cargo run --release -q -p cheetah-bench --bin bench_throughput "$smoke_json" >/dev/null
    missing=$(comm -23 <(json_keys BENCH_throughput.json) <(json_keys "$smoke_json"))
    if [[ -n "$missing" ]]; then
        echo "FAIL: bench_throughput no longer emits these BENCH_throughput.json keys:"
        echo "$missing"
        rm -f "$smoke_json"
        exit 1
    fi
    rm -f "$smoke_json"

    echo "==> serving amortization gate (committed non-smoke BENCH_throughput.json)"
    # The committed JSON is a full run: serving 16 clients through one
    # shared prepared model must beat 16 serial runs that each rebuild
    # the preparation, else the serving layer's headline win is gone.
    serial16=$(json_val BENCH_throughput.json serial_16_sessions_per_sec)
    batched16=$(json_val BENCH_throughput.json batched_16_sessions_per_sec)
    if [[ -z "$serial16" || -z "$batched16" ]]; then
        echo "FAIL: BENCH_throughput.json lacks serial_16/batched_16 sessions_per_sec"
        exit 1
    fi
    if ! awk -v b="$batched16" -v s="$serial16" 'BEGIN { exit !(b > s) }'; then
        echo "FAIL: committed batched_16_sessions_per_sec ($batched16) does not beat serial_16_sessions_per_sec ($serial16)"
        exit 1
    fi
fi

echo "==> panic-lint: wire/fault/serve modules deny unwrap/expect; protocol and serve are panic-free"
for f in crates/bfv/src/wire.rs crates/protocol/src/faults.rs crates/serve/src/lib.rs; do
    if ! grep -q '#!\[deny(clippy::unwrap_used, clippy::expect_used)\]' "$f"; then
        echo "FAIL: $f lost its #![deny(clippy::unwrap_used, clippy::expect_used)] attribute"
        exit 1
    fi
done
# The protocol boundary must never panic on hostile input: no panic-family
# macros anywhere in the crate's non-test sources. The serving layer sits
# on the same boundary (it feeds client bytes straight into decode) and
# must hold the same line. The chain solver (crates/core/src/ptune) feeds
# serving-side preparation, so an infeasible request must come back as a
# typed InfeasibleLayer, never a panic. The weight-structure analyzer
# (crates/core/src/sparse.rs) also feeds preparation and holds the line.
# The NTT boundary (crates/bfv/src/ntt.rs) converted its entry asserts to
# typed errors and must not grow new panic macros.
for d in crates/protocol/src crates/serve/src crates/core/src/ptune crates/core/src/sparse.rs crates/bfv/src/ntt.rs; do
    if grep -rnE '\b(panic!|unimplemented!|todo!|unreachable!)\(' "$d"; then
        echo "FAIL: panic-family macro in $d (boundary must return typed errors)"
        exit 1
    fi
done

echo "==> fault-injection smoke (fixed seed)"
# A second fixed seed on top of the suite's built-in default, so the gate
# replays a different deterministic corruption draw than plain `cargo test`.
FAULT_SEED=20260808 cargo test -q -p cheetah-protocol --test transcript_faults

echo "==> multi-client serving smoke (fixed-seed fleet, fault containment)"
# Deterministic multi-client fleet through the server pool: a faulted
# client must die typed while its neighbors' transcripts stay
# bit-identical to a clean run.
cargo test -q -p cheetah-serve --test concurrency_determinism faulted_client_does_not_perturb_neighbors

echo "==> scalar/SIMD bit-identity (both feature configs)"
# The simd feature must never change an output bit: the equivalence suite
# runs in both configurations (feature off clamps every backend to the
# scalar reference, pinning the clamp itself).
cargo test -q -p cheetah-bfv --features simd
cargo test -q -p cheetah-bfv --test simd_equivalence

echo "==> tier-1: cargo test -q"
cargo test -q

echo "OK"
