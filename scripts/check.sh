#!/usr/bin/env bash
# CI gate: formatting, lints, and the tier-1 verify.
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh quick    # skip the release build (debug tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "quick" ]]; then
    echo "==> tier-1: cargo build --release"
    cargo build --release

    echo "==> bench_he_ops smoke (JSON key regression gate)"
    smoke_json=$(mktemp /tmp/bench_he_ops.XXXXXX.json)
    BENCH_SMOKE=1 cargo run --release -q -p cheetah-bench --bin bench_he_ops "$smoke_json" >/dev/null
    # Every key present in the committed BENCH_he_ops.json must still be
    # emitted — losing a key means the bench silently dropped coverage.
    json_keys() { grep -o '"[a-zA-Z0-9_]*":' "$1" | sort -u; }
    missing=$(comm -23 <(json_keys BENCH_he_ops.json) <(json_keys "$smoke_json"))
    if [[ -n "$missing" ]]; then
        echo "FAIL: bench_he_ops no longer emits these BENCH_he_ops.json keys:"
        echo "$missing"
        rm -f "$smoke_json"
        exit 1
    fi
    rm -f "$smoke_json"
fi

echo "==> tier-1: cargo test -q"
cargo test -q

echo "OK"
